package microbench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

func wf(threads int) machine.Config {
	cfg := machine.WildFire()
	cfg.Seed = 42
	return cfg
}

func TestPlacementRoundRobin(t *testing.T) {
	cfg := machine.WildFire() // 2 nodes x 16
	cpus := Placement(cfg, 6)
	wantNodes := []int{0, 1, 0, 1, 0, 1}
	for i, c := range cpus {
		if c/cfg.CPUsPerNode != wantNodes[i] {
			t.Fatalf("cpus = %v", cpus)
		}
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, c := range Placement(cfg, 28) {
		if seen[c] {
			t.Fatalf("duplicate cpu in placement")
		}
		seen[c] = true
	}
}

func TestPlacementSpillsWhenNodeFull(t *testing.T) {
	cfg := machine.WildFire()
	cfg.CPUsPerNode = 2
	cpus := Placement(cfg, 4)
	seen := map[int]bool{}
	for _, c := range cpus {
		if c < 0 || c >= 4 || seen[c] {
			t.Fatalf("bad placement %v", cpus)
		}
		seen[c] = true
	}
}

func TestScenarioStrings(t *testing.T) {
	if SameProcessor.String() != "Same Processor" ||
		SameNode.String() != "Same Node" ||
		RemoteNode.String() != "Remote Node" {
		t.Fatal("scenario names wrong")
	}
	if len(Scenarios()) != 3 {
		t.Fatal("Scenarios() != 3")
	}
}

// TestUncontestedOrdering verifies the NUCA cost hierarchy per lock:
// same-processor < same-node < remote-node.
func TestUncontestedOrdering(t *testing.T) {
	for _, name := range simlock.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := wf(2)
			sp := Uncontested(cfg, name, SameProcessor, 3)
			sn := Uncontested(cfg, name, SameNode, 3)
			rn := Uncontested(cfg, name, RemoteNode, 3)
			if !(sp < sn && sn < rn) {
				t.Fatalf("%s: latencies %v < %v < %v violated", name, sp, sn, rn)
			}
		})
	}
}

// TestUncontestedHBOMatchesTATAS: the paper's design goal — HBO's
// uncontested cost is within a few percent of TATAS.
func TestUncontestedHBOMatchesTATAS(t *testing.T) {
	cfg := wf(2)
	for _, sc := range Scenarios() {
		ta := Uncontested(cfg, "TATAS", sc, 3)
		hbo := Uncontested(cfg, "HBO", sc, 3)
		diff := float64(hbo-ta) / float64(ta)
		if diff > 0.15 || diff < -0.15 {
			t.Errorf("%v: HBO %v vs TATAS %v (%.0f%% apart)", sc, hbo, ta, diff*100)
		}
	}
}

// TestUncontestedRHRemoteIsExpensive: Table 1 shows RH's remote-node
// handover costing ~2x the other locks.
func TestUncontestedRHRemoteIsExpensive(t *testing.T) {
	cfg := wf(2)
	rh := Uncontested(cfg, "RH", RemoteNode, 3)
	hbo := Uncontested(cfg, "HBO", RemoteNode, 3)
	if float64(rh) < 1.5*float64(hbo) {
		t.Fatalf("RH remote %v not ~2x HBO remote %v", rh, hbo)
	}
}

func TestTraditionalCompletes(t *testing.T) {
	for _, name := range simlock.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := Traditional(TraditionalConfig{
				Machine:    wf(8),
				Lock:       name,
				Threads:    8,
				Iterations: 30,
				Tuning:     simlock.DefaultTuning(),
			})
			if res.IterationTime <= 0 {
				t.Fatalf("iteration time %v", res.IterationTime)
			}
			if res.HandoffRatio < 0 || res.HandoffRatio > 1 {
				t.Fatalf("handoff ratio %v", res.HandoffRatio)
			}
		})
	}
}

func TestTraditionalSingleThread(t *testing.T) {
	res := Traditional(TraditionalConfig{
		Machine:    wf(1),
		Lock:       "TATAS",
		Threads:    1,
		Iterations: 50,
		Tuning:     simlock.DefaultTuning(),
	})
	if res.HandoffRatio != 0 {
		t.Fatalf("single thread handoff ratio %v", res.HandoffRatio)
	}
}

// TestTraditionalNUCAAffinity: NUCA-aware locks must show clearly lower
// node-handoff ratios than queue locks on the traditional benchmark.
func TestTraditionalNUCAAffinity(t *testing.T) {
	run := func(name string) float64 {
		return Traditional(TraditionalConfig{
			Machine:    wf(12),
			Lock:       name,
			Threads:    12,
			Iterations: 25,
			Tuning:     simlock.DefaultTuning(),
		}).HandoffRatio
	}
	hbo := run("HBO_GT")
	mcs := run("MCS")
	if hbo >= mcs {
		t.Fatalf("HBO_GT handoff %.2f not below MCS %.2f", hbo, mcs)
	}
}

func TestNewBenchCompletes(t *testing.T) {
	for _, name := range simlock.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := NewBench(NewBenchConfig{
				Machine:      wf(8),
				Lock:         name,
				Threads:      8,
				Iterations:   15,
				CriticalWork: 320,
				PrivateWork:  2000,
				Tuning:       simlock.DefaultTuning(),
			})
			if res.TotalTime <= 0 {
				t.Fatalf("total time %v", res.TotalTime)
			}
			if len(res.FinishTimes) != 8 {
				t.Fatalf("finish times %d", len(res.FinishTimes))
			}
			for tid, ft := range res.FinishTimes {
				if ft <= 0 {
					t.Fatalf("thread %d finish time %v", tid, ft)
				}
			}
		})
	}
}

// TestNewBenchContentionScaling: more critical work means more time per
// iteration for every lock.
func TestNewBenchContentionScaling(t *testing.T) {
	run := func(cw int) sim.Time {
		return NewBench(NewBenchConfig{
			Machine:      wf(8),
			Lock:         "TATAS_EXP",
			Threads:      8,
			Iterations:   15,
			CriticalWork: cw,
			PrivateWork:  2000,
			Tuning:       simlock.DefaultTuning(),
		}).IterationTime
	}
	low, high := run(0), run(1500)
	if high <= low {
		t.Fatalf("iteration time did not grow with critical work: %v vs %v", low, high)
	}
}

// TestNewBenchNUCATrafficAdvantage: under contention the NUCA-aware
// locks must generate fewer global transactions than TATAS (Table 2's
// headline result).
func TestNewBenchNUCATrafficAdvantage(t *testing.T) {
	run := func(name string) machine.Stats {
		return NewBench(NewBenchConfig{
			Machine:      wf(12),
			Lock:         name,
			Threads:      12,
			Iterations:   20,
			CriticalWork: 960,
			PrivateWork:  1000,
			Tuning:       simlock.DefaultTuning(),
		}).Traffic
	}
	tatas := run("TATAS")
	hbogt := run("HBO_GT")
	if hbogt.Global >= tatas.Global {
		t.Fatalf("HBO_GT global %d not below TATAS %d", hbogt.Global, tatas.Global)
	}
}

// TestFairnessSpreadComputation sanity-checks the Figure 8 metric.
func TestFairnessSpreadComputation(t *testing.T) {
	r := NewBenchResult{FinishTimes: []sim.Time{100, 120, 110}}
	if got := r.FinishSpreadPercent(); got < 19.9 || got > 20.1 {
		t.Fatalf("spread = %v, want 20", got)
	}
	if (NewBenchResult{}).FinishSpreadPercent() != 0 {
		t.Fatal("empty spread should be 0")
	}
}

// TestQueueLocksFairest: queue locks' finish-time spread must be the
// smallest of the families (Figure 8).
func TestQueueLocksFairest(t *testing.T) {
	run := func(name string) float64 {
		return NewBench(NewBenchConfig{
			Machine:      wf(8),
			Lock:         name,
			Threads:      8,
			Iterations:   40,
			CriticalWork: 480,
			PrivateWork:  1000,
			Tuning:       simlock.DefaultTuning(),
		}).FinishSpreadPercent()
	}
	mcs := run("MCS")
	tatas := run("TATAS_EXP")
	if mcs >= tatas {
		t.Fatalf("MCS spread %.1f%% not below TATAS_EXP %.1f%%", mcs, tatas)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := NewBenchConfig{
		Machine:      wf(6),
		Lock:         "HBO_GT_SD",
		Threads:      6,
		Iterations:   20,
		CriticalWork: 320,
		PrivateWork:  1500,
		Tuning:       simlock.DefaultTuning(),
	}
	a, b := NewBench(cfg), NewBench(cfg)
	if a.TotalTime != b.TotalTime || a.Traffic.Global != b.Traffic.Global {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.TotalTime, a.Traffic.Global, b.TotalTime, b.Traffic.Global)
	}
}
