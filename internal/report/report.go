// Package report holds the machine-readable run-report schema
// (hbo-run-report/v1) shared by every producer in the repo: the
// simulation experiment drivers (internal/experiments, cmd/locktrace,
// cmd/hbobench) and the live native-lock observability layer
// (internal/obs). It is deliberately a leaf package — schema types,
// host metadata and deterministic JSON encoding only — so both the sim
// stack and the native stack can emit the same bytes-stable format
// without importing each other.
package report

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Schema versions the machine-readable run report. Consumers pin this
// string; bump it whenever a field changes meaning or layout.
const Schema = "hbo-run-report/v1"

// Quantiles summarizes a latency distribution in nanoseconds, the
// tail-aware replacement for the mean-only numbers the text tables
// print.
type Quantiles struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// QuantilesOf extracts report quantiles from a histogram.
func QuantilesOf(h *stats.Histogram) Quantiles {
	if h == nil {
		return Quantiles{}
	}
	return Quantiles{
		Count:  h.Count(),
		MeanNS: h.Mean(),
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		MaxNS:  h.Max(),
	}
}

// QuantilesOfSnapshot extracts report quantiles from an exported
// histogram snapshot (the form live metrics travel in).
func QuantilesOfSnapshot(s stats.HistogramSnapshot) Quantiles {
	return Quantiles{
		Count:  s.Count,
		MeanNS: s.Mean(),
		P50NS:  s.Quantile(0.50),
		P90NS:  s.Quantile(0.90),
		P99NS:  s.Quantile(0.99),
		MaxNS:  s.Max,
	}
}

// TrafficReport is the machine's coherence-transaction accounting,
// split the way the paper's Tables 2 and 6 report it.
type TrafficReport struct {
	LocalPerNode []uint64 `json:"local_per_node"`
	LocalTotal   uint64   `json:"local_total"`
	Global       uint64   `json:"global"`
}

// TrafficOf converts machine counters into report form.
func TrafficOf(s machine.Stats) TrafficReport {
	return TrafficReport{LocalPerNode: s.Local, LocalTotal: s.TotalLocal(), Global: s.Global}
}

// LabelTraffic sums per-line traffic over all lines sharing a label —
// the lock-line vs data-line split of Tables 2 and 6. Unlabeled lines
// aggregate under "other".
type LabelTraffic struct {
	Label         string `json:"label"`
	Lines         int    `json:"lines"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Transfers     uint64 `json:"transfers"`
	Local         uint64 `json:"local"`
	Global        uint64 `json:"global"`
}

// AggregateByLabel rolls per-line stats up by label, sorted by label.
func AggregateByLabel(ls []machine.LineStats) []LabelTraffic {
	byLabel := map[string]*LabelTraffic{}
	for _, l := range ls {
		label := l.Label
		if label == "" {
			label = "other"
		}
		t := byLabel[label]
		if t == nil {
			t = &LabelTraffic{Label: label}
			byLabel[label] = t
		}
		t.Lines++
		t.Misses += l.Misses
		t.Invalidations += l.Invalidations
		t.Transfers += l.Transfers
		t.Local += l.Local
		t.Global += l.Global
	}
	labels := make([]string, 0, len(byLabel))
	for label := range byLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make([]LabelTraffic, 0, len(labels))
	for _, label := range labels {
		out = append(out, *byLabel[label])
	}
	return out
}

// HotLines returns the n busiest lines by total traffic, ties broken by
// address (mirrors machine.HotLines for an already-collected slice).
func HotLines(ls []machine.LineStats, n int) []machine.LineStats {
	out := append([]machine.LineStats(nil), ls...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Traffic() != out[j].Traffic() {
			return out[i].Traffic() > out[j].Traffic()
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// LockReport is the per-lock section of a run report. The abort and
// fault fields only appear in degraded-mode reports (omitempty), so
// fault-free reports keep their exact bytes. Live native reports
// (internal/obs) additionally populate Contended and SpinIterations,
// which simulated reports omit.
type LockReport struct {
	Lock            string              `json:"lock"`
	Acquisitions    int                 `json:"acquisitions"`
	Contended       int                 `json:"contended,omitempty"`
	SpinIterations  int64               `json:"spin_iterations,omitempty"`
	Aborts          int                 `json:"aborts,omitempty"`
	AbortRate       float64             `json:"abort_rate,omitempty"`
	Wait            Quantiles           `json:"wait"`
	Hold            Quantiles           `json:"hold"`
	HandoffRatio    float64             `json:"handoff_ratio"`
	NodeMatrix      [][]int             `json:"node_handoff_matrix,omitempty"`
	PerThread       []int               `json:"per_thread_acquisitions"`
	IterationTimeNS int64               `json:"iteration_time_ns,omitempty"`
	TotalTimeNS     int64               `json:"total_time_ns,omitempty"`
	Traffic         TrafficReport       `json:"traffic"`
	TrafficByLabel  []LabelTraffic      `json:"traffic_by_label,omitempty"`
	HotLines        []machine.LineStats `json:"hot_lines,omitempty"`
	FaultStats      *fault.Stats        `json:"fault_stats,omitempty"`
}

// MachineSummary records the simulated machine shape in a report. Live
// native reports record the logical runtime topology instead, with
// Preset "native".
type MachineSummary struct {
	Nodes        int    `json:"nodes"`
	CPUsPerNode  int    `json:"cpus_per_node"`
	ClusterSize  int    `json:"cluster_size,omitempty"`
	WordsPerLine int    `json:"words_per_line,omitempty"`
	Preset       string `json:"preset,omitempty"`
}

// HostReport records the machine a report was produced on — the
// metadata BENCH_sim.json used to record by hand. It is deterministic
// on a fixed host, so byte-identical-report contracts still hold.
type HostReport struct {
	CPUs      int    `json:"cpus"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go"`
}

// Host captures the current process's host metadata.
func Host() HostReport {
	return HostReport{
		CPUs:      runtime.NumCPU(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
}

// FaultReport records the replay coordinates of a degraded-mode run:
// re-running the same tool with this (schedule, seed, intensity)
// triple reproduces the report byte for byte.
type FaultReport struct {
	Schedule  string  `json:"schedule"`
	Seed      uint64  `json:"seed"`
	Intensity float64 `json:"intensity"`
}

// Report is the machine-readable result of one observability run. All
// fields are deterministic for a fixed seed (and fixed host), so
// identical invocations produce byte-identical JSON. Fault is present
// only for degraded-mode runs (omitempty keeps fault-free reports
// byte-stable).
type Report struct {
	Schema     string         `json:"schema"`
	Tool       string         `json:"tool"`
	Experiment string         `json:"experiment"`
	Seed       uint64         `json:"seed"`
	Host       HostReport     `json:"host"`
	Machine    MachineSummary `json:"machine"`
	Params     map[string]int `json:"params,omitempty"`
	Fault      *FaultReport   `json:"fault,omitempty"`
	Locks      []LockReport   `json:"locks"`
}

// WriteJSON emits the report as indented JSON. encoding/json renders
// struct fields in declaration order and map keys sorted, so the bytes
// are stable for a fixed report.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
