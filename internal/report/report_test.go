package report

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/stats"
)

func TestHostDeterministic(t *testing.T) {
	h := Host()
	if h.CPUs != runtime.NumCPU() || h.GOOS != runtime.GOOS ||
		h.GOARCH != runtime.GOARCH || h.GoVersion != runtime.Version() {
		t.Fatalf("host block = %+v", h)
	}
	if h != Host() {
		t.Fatal("Host() not stable within a process")
	}
}

func TestReportJSONIncludesHost(t *testing.T) {
	rep := &Report{
		Schema: Schema,
		Tool:   "test",
		Host:   Host(),
		Locks:  []LockReport{{Lock: "TATAS", Acquisitions: 1}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	host, ok := m["host"].(map[string]any)
	if !ok {
		t.Fatalf("report missing host block: %v", m)
	}
	for _, k := range []string{"cpus", "goos", "goarch", "go"} {
		if _, ok := host[k]; !ok {
			t.Errorf("host block missing %q: %v", k, host)
		}
	}
	// Byte determinism: encoding the same report twice is identical.
	var buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteJSON not byte-deterministic")
	}
}

func TestQuantilesOfSnapshotMatchesLive(t *testing.T) {
	var h stats.Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	live := QuantilesOf(&h)
	snap := QuantilesOfSnapshot(h.Snapshot())
	if live != snap {
		t.Fatalf("snapshot quantiles %+v != live %+v", snap, live)
	}
	if QuantilesOf(nil) != (Quantiles{}) {
		t.Fatal("QuantilesOf(nil) not zero")
	}
}
