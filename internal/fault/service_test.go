package fault

import (
	"testing"
	"time"
)

// TestServiceConfigValidate pins the parameter envelopes of both
// service fault classes.
func TestServiceConfigValidate(t *testing.T) {
	good := ServiceConfig{
		Seed:    7,
		Session: SessionExpiryConfig{Enabled: true, Prob: 0.3, Fraction: 0.25},
		NACK:    ServiceNACKConfig{Enabled: true, Prob: 0.2, RetryAfter: time.Millisecond},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if !good.Enabled() {
		t.Fatal("Enabled() = false with both classes on")
	}
	if (ServiceConfig{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	bad := []ServiceConfig{
		{Session: SessionExpiryConfig{Enabled: true, Prob: 1.5, Fraction: 0.5}},
		{Session: SessionExpiryConfig{Enabled: true, Prob: 0.5, Fraction: 0}},
		{Session: SessionExpiryConfig{Enabled: true, Prob: 0.5, Fraction: 1.5}},
		{NACK: ServiceNACKConfig{Enabled: true, Prob: 0.95, RetryAfter: time.Millisecond}},
		{NACK: ServiceNACKConfig{Enabled: true, Prob: 0.1, RetryAfter: 0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestServicePresets: every named schedule validates at a few
// intensities and enables the classes its name says.
func TestServicePresets(t *testing.T) {
	for _, name := range ServiceSchedules() {
		for _, intensity := range []float64{0.1, 0.5, 1} {
			cfg, err := ServicePreset(name, 11, intensity)
			if err != nil {
				t.Fatalf("%s@%g: %v", name, intensity, err)
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s@%g: preset does not validate: %v", name, intensity, err)
			}
			wantSession := name == "session" || name == "all"
			wantNACK := name == "nack" || name == "all"
			if cfg.Session.Enabled != wantSession || cfg.NACK.Enabled != wantNACK {
				t.Errorf("%s: classes = (session=%v, nack=%v)", name, cfg.Session.Enabled, cfg.NACK.Enabled)
			}
		}
	}
	if _, err := ServicePreset("bogus", 1, 0.5); err == nil {
		t.Error("unknown schedule accepted")
	}
	if _, err := ServicePreset("all", 1, 0); err == nil {
		t.Error("intensity 0 accepted")
	}
}

// TestServiceInjectorDeterministic: two injectors with the same seed
// make identical decision sequences; a different seed diverges.
func TestServiceInjectorDeterministic(t *testing.T) {
	cfg, err := ServicePreset("all", 42, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) (bounces, kills []bool) {
		c := cfg
		c.Seed = seed
		in := NewServiceInjector(c)
		for i := 0; i < 500; i++ {
			_, b := in.Bounce()
			bounces = append(bounces, b)
			_, k := in.TruncateTTL(time.Second)
			kills = append(kills, k)
		}
		return
	}
	b1, k1 := mk(42)
	b2, k2 := mk(42)
	b3, k3 := mk(43)
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !same(b1, b2) || !same(k1, k2) {
		t.Error("same seed produced different decision sequences")
	}
	if same(b1, b3) && same(k1, k3) {
		t.Error("different seeds produced identical decision sequences")
	}
}

// TestServiceInjectorRates: observed marginal rates track the
// configured probabilities, and counters record every injection.
func TestServiceInjectorRates(t *testing.T) {
	cfg := ServiceConfig{
		Seed:    9,
		Session: SessionExpiryConfig{Enabled: true, Prob: 0.25, Fraction: 0.5},
		NACK:    ServiceNACKConfig{Enabled: true, Prob: 0.4, RetryAfter: 3 * time.Millisecond},
	}
	in := NewServiceInjector(cfg)
	const trials = 20000
	var nacks, kills int
	for i := 0; i < trials; i++ {
		ra, b := in.Bounce()
		if b {
			nacks++
			if ra != cfg.NACK.RetryAfter {
				t.Fatalf("Bounce RetryAfter = %v, want %v", ra, cfg.NACK.RetryAfter)
			}
		}
		cut, k := in.TruncateTTL(time.Second)
		if k {
			kills++
			if cut != 500*time.Millisecond {
				t.Fatalf("TruncateTTL = %v, want 500ms", cut)
			}
		} else if cut != time.Second {
			t.Fatalf("un-truncated TTL changed: %v", cut)
		}
	}
	nackRate := float64(nacks) / trials
	killRate := float64(kills) / trials
	if nackRate < 0.35 || nackRate > 0.45 {
		t.Errorf("NACK rate %.3f far from 0.4", nackRate)
	}
	if killRate < 0.2 || killRate > 0.3 {
		t.Errorf("session-kill rate %.3f far from 0.25", killRate)
	}
	st := in.Stats()
	if st.NACKs != uint64(nacks) || st.SessionExpiries != uint64(kills) {
		t.Errorf("stats %+v disagree with observed (%d, %d)", st, nacks, kills)
	}
	if st.Total() != uint64(nacks+kills) {
		t.Errorf("Total() = %d, want %d", st.Total(), nacks+kills)
	}
}

// TestServiceInjectorNil: a nil injector is a no-op, so callers can
// thread it through unconditionally.
func TestServiceInjectorNil(t *testing.T) {
	var in *ServiceInjector
	if _, b := in.Bounce(); b {
		t.Error("nil injector bounced")
	}
	if ttl, k := in.TruncateTTL(time.Second); k || ttl != time.Second {
		t.Error("nil injector truncated")
	}
	if s := in.Stats(); s != (ServiceStats{}) {
		t.Errorf("nil injector stats = %+v", s)
	}
}
