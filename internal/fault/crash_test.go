package fault

import (
	"bytes"
	"errors"
	"testing"
)

// TestCrashWriterKill: the crossing write lands only up to the planned
// offset, and every later write fails sticky.
func TestCrashWriterKill(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCrashWriter(&buf, CrashPlan{AfterBytes: 10, Mode: CrashKill})

	if n, err := cw.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("pre-crash write = (%d, %v), want (8, nil)", n, err)
	}
	if cw.Crashed() {
		t.Fatal("crashed before the planned offset")
	}
	if n, err := cw.Write(make([]byte, 8)); n != 0 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write = (%d, %v), want (0, ErrCrashed)", n, err)
	}
	if !cw.Crashed() {
		t.Fatal("Crashed() false after the crossing write")
	}
	if buf.Len() != 10 {
		t.Fatalf("kill tail: %d bytes landed, want 10 (8 + 2 torn)", buf.Len())
	}
	if n, err := cw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = (%d, %v), want sticky ErrCrashed", n, err)
	}
	if buf.Len() != 10 {
		t.Fatal("post-crash write leaked bytes")
	}
}

// TestCrashWriterTorn: the remainder of the crossing write is garbage,
// not absent — the total length matches what a full write would have
// been, but the tail bytes are trash.
func TestCrashWriterTorn(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCrashWriter(&buf, CrashPlan{AfterBytes: 4, Mode: CrashTorn})

	payload := []byte("ABCDEFGH")
	if _, err := cw.Write(payload); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write error = %v, want ErrCrashed", err)
	}
	got := buf.Bytes()
	if len(got) != len(payload) {
		t.Fatalf("torn tail length = %d, want %d", len(got), len(payload))
	}
	if !bytes.Equal(got[:4], payload[:4]) {
		t.Fatalf("prefix garbled: %q", got[:4])
	}
	if bytes.Equal(got[4:], payload[4:]) {
		t.Fatal("tail not garbled — torn mode wrote the real bytes")
	}
	for _, b := range got[4:] {
		if b != 0xA5 {
			t.Fatalf("garbage byte %#x, want 0xA5", b)
		}
	}
}

// TestCrashWriterDup: the crossing write lands twice, and the caller
// still sees ErrCrashed — the process died before the syscall
// returned, so the duplicate is invisible to the writer.
func TestCrashWriterDup(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCrashWriter(&buf, CrashPlan{AfterBytes: 4, Mode: CrashDup})

	payload := []byte("ABCDEFGH")
	if n, err := cw.Write(payload); n != 0 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write = (%d, %v), want (0, ErrCrashed)", n, err)
	}
	want := append(append([]byte{}, payload...), payload...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("dup tail = %q, want the payload twice", buf.Bytes())
	}
	if cw.Written() != int64(len(want)) {
		t.Fatalf("Written() = %d, want %d", cw.Written(), len(want))
	}
}

// TestCrashPlanFor: plans are deterministic per seed, land inside the
// stream, and cover every mode across a seed sweep.
func TestCrashPlanFor(t *testing.T) {
	const total = 1000
	modes := map[CrashMode]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		p1 := CrashPlanFor(seed, total)
		p2 := CrashPlanFor(seed, total)
		if p1 != p2 {
			t.Fatalf("seed %d: plan not deterministic: %+v vs %+v", seed, p1, p2)
		}
		if p1.AfterBytes < 1 || p1.AfterBytes > total {
			t.Fatalf("seed %d: offset %d outside [1, %d]", seed, p1.AfterBytes, total)
		}
		modes[p1.Mode] = true
	}
	for _, m := range CrashModes() {
		if !modes[m] {
			t.Fatalf("mode %v never chosen across 64 seeds", m)
		}
	}
}

// TestCrashWriterImmediate: AfterBytes <= 0 crashes on the first write
// with nothing landing (kill mode).
func TestCrashWriterImmediate(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCrashWriter(&buf, CrashPlan{AfterBytes: 0, Mode: CrashKill})
	if _, err := cw.Write([]byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("first write error = %v, want ErrCrashed", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes landed before an immediate crash", buf.Len())
	}
}
