package fault

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
)

// Service-tier fault classes for the lock/lease service (hbolockd).
// The simulated machine's Injector models a sick interconnect; these
// model a sick *distributed system* above it, the failure modes every
// lease service must absorb:
//
//   - session expiry: a client's session dies while it holds a lease —
//     the lease's TTL is truncated so it falls due early, and the
//     holder's next renew/release comes back stale. This is the fault
//     that makes fencing tokens necessary at all;
//   - request NACKs: a request is bounced with a retriable error and a
//     Retry-After hint before touching any state, modeling admission
//     failure in an overloaded or flapping frontend — the service-tier
//     analogue of the directory NACKs the machine layer injects.
//
// Decisions are drawn from seeded splitmix64-derived RNG streams, so a
// single-threaded driver (lockload -deterministic) replays the exact
// fault sequence for a given seed. Under live concurrent load the
// per-request interleaving is the host scheduler's, but the marginal
// rates still hold and every injected fault is counted.
type SessionExpiryConfig struct {
	Enabled bool
	// Prob is the per-grant probability the granted session dies early.
	Prob float64
	// Fraction in (0, 1] truncates the lease to this fraction of its
	// TTL when the session dies.
	Fraction float64
}

// ServiceNACKConfig bounces requests before processing.
type ServiceNACKConfig struct {
	Enabled bool
	// Prob is the per-request bounce probability, in [0, 0.9].
	Prob float64
	// RetryAfter is the backoff hint returned with the bounce.
	RetryAfter time.Duration
}

// ServiceConfig selects and parameterizes the service fault classes.
// The zero value injects nothing.
type ServiceConfig struct {
	Seed    uint64
	Session SessionExpiryConfig
	NACK    ServiceNACKConfig
}

// Enabled reports whether any service fault class is active.
func (c ServiceConfig) Enabled() bool { return c.Session.Enabled || c.NACK.Enabled }

// Validate reports configuration errors.
func (c ServiceConfig) Validate() error {
	if c.Session.Enabled {
		if c.Session.Prob < 0 || c.Session.Prob > 1 {
			return fmt.Errorf("fault: Session.Prob = %g, need in [0, 1]", c.Session.Prob)
		}
		if c.Session.Fraction <= 0 || c.Session.Fraction > 1 {
			return fmt.Errorf("fault: Session.Fraction = %g, need in (0, 1]", c.Session.Fraction)
		}
	}
	if c.NACK.Enabled {
		if c.NACK.Prob < 0 || c.NACK.Prob > 0.9 {
			return fmt.Errorf("fault: NACK.Prob = %g, need in [0, 0.9]", c.NACK.Prob)
		}
		if c.NACK.RetryAfter <= 0 {
			return fmt.Errorf("fault: NACK.RetryAfter = %v, need > 0", c.NACK.RetryAfter)
		}
	}
	return nil
}

// ServiceSchedules names the built-in service fault schedules.
func ServiceSchedules() []string { return []string{"session", "nack", "all"} }

// ServicePreset builds the named service schedule at the given
// intensity in (0, 1]. The replay coordinate is (seed, name,
// intensity), mirroring the machine-layer Preset contract.
func ServicePreset(name string, seed uint64, intensity float64) (ServiceConfig, error) {
	if intensity <= 0 || intensity > 1 {
		return ServiceConfig{}, fmt.Errorf("fault: intensity %g outside (0, 1]", intensity)
	}
	session := SessionExpiryConfig{
		Enabled:  true,
		Prob:     0.2 * intensity,
		Fraction: 0.25,
	}
	nack := ServiceNACKConfig{
		Enabled:    true,
		Prob:       0.15 * intensity,
		RetryAfter: 5 * time.Millisecond,
	}
	cfg := ServiceConfig{Seed: seed}
	switch name {
	case "session":
		cfg.Session = session
	case "nack":
		cfg.NACK = nack
	case "all":
		cfg.Session, cfg.NACK = session, nack
	default:
		return ServiceConfig{}, fmt.Errorf("fault: unknown service schedule %q (have %v)", name, ServiceSchedules())
	}
	return cfg, nil
}

// ServiceStats counts injected service faults.
type ServiceStats struct {
	SessionExpiries uint64 `json:"session_expiries"`
	NACKs           uint64 `json:"nacks"`
}

// Total sums all injected service faults.
func (s ServiceStats) Total() uint64 { return s.SessionExpiries + s.NACKs }

// ServiceInjector evaluates a ServiceConfig per request/grant. It is
// safe for concurrent use; each class draws from its own RNG stream.
type ServiceInjector struct {
	cfg ServiceConfig

	mu      sync.Mutex
	session *sim.RNG
	nack    *sim.RNG
	stats   ServiceStats
}

// NewServiceInjector builds an injector; cfg must pass Validate.
func NewServiceInjector(cfg ServiceConfig) *ServiceInjector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &ServiceInjector{
		cfg:     cfg,
		session: sim.NewRNG(streamSeed(cfg.Seed, 4, 0) | 1),
		nack:    sim.NewRNG(streamSeed(cfg.Seed, 5, 0) | 1),
	}
}

// Config returns the injector's configuration.
func (in *ServiceInjector) Config() ServiceConfig { return in.cfg }

// TruncateTTL decides whether the session behind a fresh grant dies
// early; if so it returns the truncated TTL to apply.
func (in *ServiceInjector) TruncateTTL(ttl time.Duration) (time.Duration, bool) {
	if in == nil || !in.cfg.Session.Enabled || in.cfg.Session.Prob <= 0 {
		return ttl, false
	}
	in.mu.Lock()
	hit := in.session.Float64() < in.cfg.Session.Prob
	if hit {
		in.stats.SessionExpiries++
	}
	in.mu.Unlock()
	if !hit {
		return ttl, false
	}
	cut := time.Duration(float64(ttl) * in.cfg.Session.Fraction)
	if cut < time.Nanosecond {
		cut = time.Nanosecond
	}
	return cut, true
}

// Bounce decides whether one request is NACKed before processing; if
// so it returns the Retry-After hint.
func (in *ServiceInjector) Bounce() (time.Duration, bool) {
	if in == nil || !in.cfg.NACK.Enabled || in.cfg.NACK.Prob <= 0 {
		return 0, false
	}
	in.mu.Lock()
	hit := in.nack.Float64() < in.cfg.NACK.Prob
	if hit {
		in.stats.NACKs++
	}
	in.mu.Unlock()
	if !hit {
		return 0, false
	}
	return in.cfg.NACK.RetryAfter, true
}

// Stats returns the injected-fault counts so far.
func (in *ServiceInjector) Stats() ServiceStats {
	if in == nil {
		return ServiceStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
