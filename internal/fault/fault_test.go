package fault

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"zero", Config{}, ""},
		{"spike ok", Config{Spike: SpikeConfig{Enabled: true, MeanInterval: 100, MeanDuration: 10, Factor: 2}}, ""},
		{"spike no interval", Config{Spike: SpikeConfig{Enabled: true, MeanDuration: 10, Factor: 2}}, "MeanInterval"},
		{"spike no duration", Config{Spike: SpikeConfig{Enabled: true, MeanInterval: 100, Factor: 2}}, "MeanDuration"},
		{"spike speedup", Config{Spike: SpikeConfig{Enabled: true, MeanInterval: 100, MeanDuration: 10, Factor: 0.5}}, "Factor"},
		{"storm speedup", Config{Storm: StormConfig{Enabled: true, MeanInterval: 100, MeanDuration: 10, Factor: 0}}, "Factor"},
		{"pause ok", Config{Pause: PauseConfig{Enabled: true, MeanInterval: 100, MeanDuration: 10}}, ""},
		{"pause bad", Config{Pause: PauseConfig{Enabled: true, MeanInterval: -1, MeanDuration: 10}}, "MeanInterval"},
		{"nack ok", Config{NACK: NACKConfig{Enabled: true, Prob: 0.3, RetryDelay: 50}}, ""},
		{"nack prob high", Config{NACK: NACKConfig{Enabled: true, Prob: 0.95, RetryDelay: 50}}, "Prob"},
		{"nack no delay", Config{NACK: NACKConfig{Enabled: true, Prob: 0.3}}, "RetryDelay"},
		{"nack retries", Config{NACK: NACKConfig{Enabled: true, Prob: 0.3, RetryDelay: 50, MaxRetries: 100}}, "MaxRetries"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range Schedules() {
		cfg, err := Preset(name, 42, 0.5)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if !cfg.Enabled() {
			t.Fatalf("Preset(%q) enables nothing", name)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Preset(%q) invalid: %v", name, err)
		}
		if cfg.Seed != 42 {
			t.Fatalf("Preset(%q) seed %d, want 42", name, cfg.Seed)
		}
	}
	if _, err := Preset("meteor", 1, 0.5); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if _, err := Preset("all", 1, 0); err == nil {
		t.Fatal("zero intensity accepted")
	}
	if _, err := Preset("all", 1, 1.5); err == nil {
		t.Fatal("intensity > 1 accepted")
	}
}

// TestPresetIntensityScales checks that higher intensity means more
// frequent windows and harder multipliers.
func TestPresetIntensityScales(t *testing.T) {
	lo, _ := Preset("all", 1, 0.1)
	hi, _ := Preset("all", 1, 1.0)
	if lo.Spike.MeanInterval <= hi.Spike.MeanInterval {
		t.Fatal("low intensity should space spike windows further apart")
	}
	if lo.Storm.Factor >= hi.Storm.Factor {
		t.Fatal("high intensity should inflate the storm factor")
	}
	if lo.NACK.Prob >= hi.NACK.Prob {
		t.Fatal("high intensity should raise the NACK probability")
	}
}

// TestWindowStreamDeterministic replays a window stream query sequence
// and requires identical windows and counts.
func TestWindowStreamDeterministic(t *testing.T) {
	run := func() ([]bool, uint64) {
		var count uint64
		ws := newWindowStream(7, 100, 30, &count)
		var seen []bool
		for now := sim.Time(0); now < 5000; now += 13 {
			_, ok := ws.active(now)
			seen = append(seen, ok)
		}
		return seen, count
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Fatalf("window counts diverge: %d vs %d", ca, cb)
	}
	if ca == 0 {
		t.Fatal("no windows observed in 50 mean intervals")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window activity diverges at query %d", i)
		}
	}
}

// TestWindowStreamMonotone checks that a window, once reported with an
// end time, stays active up to (and not at) that end.
func TestWindowStreamMonotone(t *testing.T) {
	var count uint64
	ws := newWindowStream(3, 200, 50, &count)
	for now := sim.Time(0); now < 20000; now++ {
		end, ok := ws.active(now)
		if !ok {
			continue
		}
		if end <= now {
			t.Fatalf("active window ends at %v, not after now=%v", end, now)
		}
		if gotEnd, still := ws.active(end - 1); !still || gotEnd != end {
			t.Fatalf("window [.., %v) not active at its last instant", end)
		}
		if _, still := ws.active(end); still {
			// A new window may legitimately start exactly at end only if
			// the sampled gap were zero, which clampTime forbids.
			t.Fatalf("window still active at its end %v", end)
		}
		now = end
	}
	if count == 0 {
		t.Fatal("no windows generated")
	}
}

// TestInjectorStreamsIndependent checks nodes get distinct schedules
// and that per-class streams do not alias.
func TestInjectorStreamsIndependent(t *testing.T) {
	cfg, _ := Preset("all", 9, 1.0)
	in := NewInjector(cfg, 4)
	sameSpike, samePause := true, true
	for now := sim.Time(0); now < 20*sim.Millisecond; now += 777 {
		if in.LatencyScale(now, 0) != in.LatencyScale(now, 3) {
			sameSpike = false
		}
		_, p0 := in.PausedUntil(now, 0)
		_, p3 := in.PausedUntil(now, 3)
		if p0 != p3 {
			samePause = false
		}
	}
	if sameSpike {
		t.Error("nodes 0 and 3 share an identical spike schedule")
	}
	if samePause {
		t.Error("nodes 0 and 3 share an identical pause schedule")
	}
}

// TestNACKDeterministicRate checks the NACK stream is deterministic and
// lands near the configured probability.
func TestNACKDeterministicRate(t *testing.T) {
	cfg := Config{Seed: 5, NACK: NACKConfig{Enabled: true, Prob: 0.25, RetryDelay: 100}}
	run := func() (uint64, int) {
		in := NewInjector(cfg, 2)
		hits := 0
		for i := 0; i < 10000; i++ {
			if in.NACKed(i % 2) {
				hits++
			}
		}
		return in.Stats().NACKs, hits
	}
	n1, h1 := run()
	n2, h2 := run()
	if n1 != n2 || h1 != h2 {
		t.Fatalf("NACK stream not deterministic: (%d,%d) vs (%d,%d)", n1, h1, n2, h2)
	}
	if n1 != uint64(h1) {
		t.Fatalf("stats count %d != observed hits %d", n1, h1)
	}
	rate := float64(h1) / 10000
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("NACK rate %.3f far from configured 0.25", rate)
	}
}

func TestInjectorDisabledClasses(t *testing.T) {
	in := NewInjector(Config{Seed: 1}, 2)
	if s := in.LatencyScale(100, 0); s != 1 {
		t.Fatalf("LatencyScale = %g with spikes disabled", s)
	}
	if s := in.LinkScale(100); s != 1 {
		t.Fatalf("LinkScale = %g with storms disabled", s)
	}
	if _, ok := in.PausedUntil(100, 1); ok {
		t.Fatal("paused with pauses disabled")
	}
	if in.NACKed(0) {
		t.Fatal("NACKed with NACKs disabled")
	}
	if in.Stats().Total() != 0 {
		t.Fatal("stats counted with everything disabled")
	}
}
