// Package fault is a deterministic fault-injection layer for the
// simulated NUCA machine. It generates seed-driven schedules of four
// fault classes the paper's healthy Sun WildFire never shows but real
// NUCA deployments do:
//
//   - latency spikes: windows during which all coherence transfers
//     touching a node are slowed by a multiplicative factor (a thermally
//     throttled or overloaded node);
//   - congestion storms: windows during which the global interconnect's
//     per-crossing occupancy is inflated, so crossings queue (bisection
//     bandwidth stolen by other traffic);
//   - node pauses: windows during which every CPU of a node stops
//     executing (OS or hypervisor preemption at socket granularity —
//     the scenario that motivates timeout-capable locks, cf. Chabbi et
//     al.'s HMCS-T and Dice & Kogan's compact NUMA-aware locks);
//   - transient NACKs: coherence requests that are bounced at the
//     target and must be retried after a delay, modeling the
//     retry/NACK behaviour of real directory fabrics under load.
//
// Everything is a pure function of (Config.Seed, schedule parameters):
// window streams are derived with a splitmix64 per (class, node) stream
// seed and advanced lazily against the monotone simulated clock, so a
// run with the same (faultSeed, schedule) pair replays byte-identically
// regardless of host parallelism. A zero Config (no class enabled)
// injects nothing and costs nothing.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// SpikeConfig describes per-node latency-spike windows: at exponentially
// distributed intervals a node enters a window of exponentially
// distributed duration during which coherence transfers touching it are
// Factor times slower.
type SpikeConfig struct {
	Enabled      bool
	MeanInterval sim.Time
	MeanDuration sim.Time
	Factor       float64 // latency multiplier while a window is active (>= 1)
}

// StormConfig describes global-interconnect congestion storms: windows
// during which every interconnect crossing's service occupancy is
// inflated by Factor, so crossings queue behind each other.
type StormConfig struct {
	Enabled      bool
	MeanInterval sim.Time
	MeanDuration sim.Time
	Factor       float64 // link-occupancy multiplier while active (>= 1)
}

// PauseConfig describes node pauses: windows during which every CPU of
// a node is stopped, as if the OS or hypervisor preempted the whole
// socket. A paused lock holder stalls every waiter — the degradation
// mode queue locks are most sensitive to.
type PauseConfig struct {
	Enabled      bool
	MeanInterval sim.Time
	MeanDuration sim.Time
}

// NACKConfig describes transient NACK-and-retry on coherence misses:
// each miss is independently bounced with probability Prob (per
// attempt, at most MaxRetries times) and retried after RetryDelay.
type NACKConfig struct {
	Enabled    bool
	Prob       float64  // per-attempt bounce probability, in [0, 0.9]
	RetryDelay sim.Time // time between a bounce and the retry
	MaxRetries int      // bound on consecutive bounces per miss (0 = default 8)
}

// defaultNACKRetries bounds consecutive NACKs when MaxRetries is 0.
const defaultNACKRetries = 8

// Config selects and parameterizes the fault classes. The zero value
// injects nothing. Seed is the fault layer's own seed, independent of
// the machine's simulation and tie-break seeds, so the same workload
// can be replayed under different fault schedules and vice versa.
type Config struct {
	Seed  uint64
	Spike SpikeConfig
	Storm StormConfig
	Pause PauseConfig
	NACK  NACKConfig
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.Spike.Enabled || c.Storm.Enabled || c.Pause.Enabled || c.NACK.Enabled
}

// Validate reports configuration errors. Window means must be positive
// (the exponential sampler rejects non-positive means), factors must
// not speed the machine up, and the NACK probability is capped below 1
// so a miss cannot bounce forever even with a large retry bound.
func (c Config) Validate() error {
	check := func(class string, interval, duration sim.Time) error {
		if interval <= 0 {
			return fmt.Errorf("fault: %s MeanInterval = %v, need > 0", class, interval)
		}
		if duration <= 0 {
			return fmt.Errorf("fault: %s MeanDuration = %v, need > 0", class, duration)
		}
		return nil
	}
	if c.Spike.Enabled {
		if err := check("Spike", c.Spike.MeanInterval, c.Spike.MeanDuration); err != nil {
			return err
		}
		if c.Spike.Factor < 1 {
			return fmt.Errorf("fault: Spike.Factor = %g, need >= 1", c.Spike.Factor)
		}
	}
	if c.Storm.Enabled {
		if err := check("Storm", c.Storm.MeanInterval, c.Storm.MeanDuration); err != nil {
			return err
		}
		if c.Storm.Factor < 1 {
			return fmt.Errorf("fault: Storm.Factor = %g, need >= 1", c.Storm.Factor)
		}
	}
	if c.Pause.Enabled {
		if err := check("Pause", c.Pause.MeanInterval, c.Pause.MeanDuration); err != nil {
			return err
		}
	}
	if c.NACK.Enabled {
		if c.NACK.Prob < 0 || c.NACK.Prob > 0.9 {
			return fmt.Errorf("fault: NACK.Prob = %g, need in [0, 0.9]", c.NACK.Prob)
		}
		if c.NACK.RetryDelay <= 0 {
			return fmt.Errorf("fault: NACK.RetryDelay = %v, need > 0", c.NACK.RetryDelay)
		}
		if c.NACK.MaxRetries < 0 || c.NACK.MaxRetries > 64 {
			return fmt.Errorf("fault: NACK.MaxRetries = %d, need in [0, 64]", c.NACK.MaxRetries)
		}
	}
	return nil
}

// Schedules names the built-in fault schedules, one per class plus the
// combined "all". The order is fixed so reports and sweeps iterate
// deterministically.
func Schedules() []string {
	return []string{"spike", "storm", "pause", "nack", "all"}
}

// Preset builds the named schedule at the given intensity in (0, 1].
// Intensity scales both how often windows open and how hard they hit;
// the base rates are calibrated for the repository's microbenchmark
// runs (simulated milliseconds to tens of milliseconds). The replay
// coordinate of a faulty run is exactly (seed, name, intensity).
func Preset(name string, seed uint64, intensity float64) (Config, error) {
	if intensity <= 0 || intensity > 1 {
		return Config{}, fmt.Errorf("fault: intensity %g outside (0, 1]", intensity)
	}
	// Rarer at low intensity: mean gap between windows shrinks as
	// intensity rises.
	gap := func(base sim.Time) sim.Time { return sim.Time(float64(base) / intensity) }
	spike := SpikeConfig{
		Enabled:      true,
		MeanInterval: gap(500 * sim.Microsecond),
		MeanDuration: 100 * sim.Microsecond,
		Factor:       1 + 7*intensity,
	}
	storm := StormConfig{
		Enabled:      true,
		MeanInterval: gap(800 * sim.Microsecond),
		MeanDuration: 200 * sim.Microsecond,
		Factor:       1 + 9*intensity,
	}
	pause := PauseConfig{
		Enabled:      true,
		MeanInterval: gap(1 * sim.Millisecond),
		MeanDuration: 150 * sim.Microsecond,
	}
	nack := NACKConfig{
		Enabled:    true,
		Prob:       0.25 * intensity,
		RetryDelay: 2 * sim.Microsecond,
		MaxRetries: defaultNACKRetries,
	}
	cfg := Config{Seed: seed}
	switch name {
	case "spike":
		cfg.Spike = spike
	case "storm":
		cfg.Storm = storm
	case "pause":
		cfg.Pause = pause
	case "nack":
		cfg.NACK = nack
	case "all":
		cfg.Spike, cfg.Storm, cfg.Pause, cfg.NACK = spike, storm, pause, nack
	default:
		return Config{}, fmt.Errorf("fault: unknown schedule %q (have %v)", name, Schedules())
	}
	return cfg, nil
}

// Stats counts the faults a run actually experienced. Windows are
// counted when first observed active by the machine (a window nobody
// runs into costs nothing and is not counted), which is deterministic
// for a deterministic simulation.
type Stats struct {
	SpikeWindows uint64 `json:"spike_windows"`
	StormWindows uint64 `json:"storm_windows"`
	PauseWindows uint64 `json:"pause_windows"`
	NACKs        uint64 `json:"nacks"`
}

// Total sums all fault events.
func (s Stats) Total() uint64 {
	return s.SpikeWindows + s.StormWindows + s.PauseWindows + s.NACKs
}

// splitmix64 derives independent stream seeds from the root seed, the
// same mixer the check explorer uses for its seed streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func streamSeed(root uint64, class, node int) uint64 {
	return splitmix64(root ^ splitmix64(uint64(class)*0x100000001b3+uint64(node)+1))
}

// windowStream lazily generates an unbounded sequence of
// non-overlapping [start, end) fault windows from its own RNG stream.
// Queries must come at monotonically non-decreasing times — true inside
// a discrete-event simulation — so advancing past expired windows never
// needs to rewind.
type windowStream struct {
	rng        *sim.RNG
	meanGap    sim.Time
	meanDur    sim.Time
	start, end sim.Time
	counted    bool
	count      *uint64
}

func newWindowStream(seed uint64, meanGap, meanDur sim.Time, count *uint64) *windowStream {
	ws := &windowStream{rng: sim.NewRNG(seed | 1), meanGap: meanGap, meanDur: meanDur, count: count}
	ws.start = clampTime(ws.rng.Exp(meanGap))
	ws.end = ws.start + clampTime(ws.rng.Exp(meanDur))
	return ws
}

// clampTime keeps sampled gaps and durations at >= 1 ns so streams
// always make progress.
func clampTime(t sim.Time) sim.Time {
	if t < 1 {
		return 1
	}
	return t
}

// active reports whether a window covers now and, if so, when it ends.
func (ws *windowStream) active(now sim.Time) (sim.Time, bool) {
	for now >= ws.end {
		ws.start = ws.end + clampTime(ws.rng.Exp(ws.meanGap))
		ws.end = ws.start + clampTime(ws.rng.Exp(ws.meanDur))
		ws.counted = false
	}
	if now < ws.start {
		return 0, false
	}
	if !ws.counted {
		ws.counted = true
		*ws.count++
	}
	return ws.end, true
}

// Injector evaluates a Config against the simulated clock. The machine
// holds one injector (nil when no class is enabled) and consults it at
// its existing latency, queueing, and preemption points; the injector
// itself schedules nothing, so disabling it reproduces the fault-free
// event sequence exactly.
type Injector struct {
	cfg   Config
	spike []*windowStream // per node
	pause []*windowStream // per node
	storm *windowStream
	nack  []*sim.RNG // per node
	stats Stats
}

// NewInjector builds an injector for a machine with the given node
// count. cfg must have passed Validate; nodes must be >= 1.
func NewInjector(cfg Config, nodes int) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if nodes < 1 {
		panic(fmt.Sprintf("fault: NewInjector with %d nodes", nodes))
	}
	in := &Injector{cfg: cfg}
	if cfg.Spike.Enabled {
		in.spike = make([]*windowStream, nodes)
		for n := range in.spike {
			in.spike[n] = newWindowStream(streamSeed(cfg.Seed, 0, n),
				cfg.Spike.MeanInterval, cfg.Spike.MeanDuration, &in.stats.SpikeWindows)
		}
	}
	if cfg.Storm.Enabled {
		in.storm = newWindowStream(streamSeed(cfg.Seed, 1, 0),
			cfg.Storm.MeanInterval, cfg.Storm.MeanDuration, &in.stats.StormWindows)
	}
	if cfg.Pause.Enabled {
		in.pause = make([]*windowStream, nodes)
		for n := range in.pause {
			in.pause[n] = newWindowStream(streamSeed(cfg.Seed, 2, n),
				cfg.Pause.MeanInterval, cfg.Pause.MeanDuration, &in.stats.PauseWindows)
		}
	}
	if cfg.NACK.Enabled {
		in.nack = make([]*sim.RNG, nodes)
		for n := range in.nack {
			in.nack[n] = sim.NewRNG(streamSeed(cfg.Seed, 3, n) | 1)
		}
	}
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// LatencyScale returns the multiplier to apply to a coherence transfer
// touching node at time now (1 when no spike window is active).
func (in *Injector) LatencyScale(now sim.Time, node int) float64 {
	if in.spike == nil {
		return 1
	}
	if _, ok := in.spike[node].active(now); ok {
		return in.cfg.Spike.Factor
	}
	return 1
}

// LinkScale returns the multiplier for the global interconnect's
// per-crossing occupancy at time now (1 outside storm windows).
func (in *Injector) LinkScale(now sim.Time) float64 {
	if in.storm == nil {
		return 1
	}
	if _, ok := in.storm.active(now); ok {
		return in.cfg.Storm.Factor
	}
	return 1
}

// PausedUntil reports whether node is inside a pause window at time
// now, and if so when the window ends.
func (in *Injector) PausedUntil(now sim.Time, node int) (sim.Time, bool) {
	if in.pause == nil {
		return 0, false
	}
	return in.pause[node].active(now)
}

// NACKed decides whether one coherence-miss attempt issued from node is
// bounced. Each call consumes the node's NACK stream, so the decision
// sequence is a pure function of the fault seed and the (deterministic)
// order of misses.
func (in *Injector) NACKed(node int) bool {
	if in.nack == nil || in.cfg.NACK.Prob <= 0 {
		return false
	}
	hit := in.nack[node].Float64() < in.cfg.NACK.Prob
	if hit {
		in.stats.NACKs++
	}
	return hit
}

// RetryDelay returns the configured NACK retry delay.
func (in *Injector) RetryDelay() sim.Time { return in.cfg.NACK.RetryDelay }

// MaxRetries returns the bound on consecutive NACKs per miss.
func (in *Injector) MaxRetries() int {
	if in.cfg.NACK.MaxRetries <= 0 {
		return defaultNACKRetries
	}
	return in.cfg.NACK.MaxRetries
}

// Stats returns the fault counts observed so far.
func (in *Injector) Stats() Stats { return in.stats }
