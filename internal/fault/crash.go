package fault

import (
	"bytes"
	"errors"
	"io"
)

// Crash-point injection for durable-state writers (the lock service's
// write-ahead log). Where the machine-layer Injector models a sick
// interconnect and the ServiceInjector a sick distributed system, the
// CrashWriter models the ultimate abort: the process dies mid-write.
// It wraps the io.Writer a WAL appends frames through and kills the
// stream at a planned byte offset, in one of three tail shapes real
// crashes leave behind:
//
//   - CrashKill: the write crossing the budget lands only partially —
//     bytes up to the offset reach the file, the rest never do (a torn
//     final frame when the offset falls inside one);
//   - CrashTorn: the partial tail is followed by garbage bytes where
//     the rest of the frame would have been (sector trash under the
//     checksum, which replay must reject);
//   - CrashDup: the crossing write lands fully and then lands again
//     before the process dies (a duplicated tail frame, which replay
//     must apply idempotently).
//
// Every write after the crash fails with ErrCrashed, so the wrapped
// store goes sticky-failed exactly like a dead process's file
// descriptor. The plan is a pure value (offset, mode): a crash-matrix
// test enumerates offsets across a seeded workload and replays each
// one deterministically, and CrashPlanFor derives a seed-addressable
// plan for soak-style use.
type CrashMode int

const (
	// CrashKill stops the stream mid-write at the planned offset.
	CrashKill CrashMode = iota
	// CrashTorn stops mid-write and fills the remainder of the crossing
	// write with garbage bytes.
	CrashTorn
	// CrashDup completes the crossing write, duplicates it, then stops.
	CrashDup
)

// String renders the mode for test labels and reports.
func (m CrashMode) String() string {
	switch m {
	case CrashKill:
		return "kill"
	case CrashTorn:
		return "torn"
	case CrashDup:
		return "dup"
	}
	return "invalid"
}

// CrashModes lists the modes in fixed order for matrix sweeps.
func CrashModes() []CrashMode { return []CrashMode{CrashKill, CrashTorn, CrashDup} }

// ErrCrashed is returned by every CrashWriter write at or after the
// planned crash point.
var ErrCrashed = errors.New("fault: injected crash")

// CrashPlan pins one deterministic crash: the stream dies when
// cumulative written bytes would exceed AfterBytes, with Mode shaping
// what the crossing write leaves behind.
type CrashPlan struct {
	AfterBytes int64
	Mode       CrashMode
}

// CrashPlanFor derives a seed-addressable plan over a stream of
// totalBytes: the offset lands in [1, totalBytes] and the mode cycles
// through all three shapes, so a (seed) coordinate replays exactly.
func CrashPlanFor(seed uint64, totalBytes int64) CrashPlan {
	if totalBytes < 1 {
		totalBytes = 1
	}
	x := splitmix64(seed)
	return CrashPlan{
		AfterBytes: 1 + int64(x%uint64(totalBytes)),
		Mode:       CrashModes()[int(splitmix64(x)%3)],
	}
}

// CrashWriter kills a write stream at a planned byte offset. Not safe
// for concurrent use; the WAL it wraps serializes appends already.
type CrashWriter struct {
	w       io.Writer
	plan    CrashPlan
	written int64
	crashed bool
}

// NewCrashWriter wraps w with the given plan. An AfterBytes <= 0 plan
// crashes on the first write.
func NewCrashWriter(w io.Writer, plan CrashPlan) *CrashWriter {
	return &CrashWriter{w: w, plan: plan}
}

// Write forwards p until the plan's offset, then shapes the tail per
// the mode and fails this and every later write with ErrCrashed. The
// crossing write reports ErrCrashed even when (Dup) its bytes landed:
// the modeled process died before the syscall returned, so the caller
// never learns the write survived.
func (cw *CrashWriter) Write(p []byte) (int, error) {
	if cw.crashed {
		return 0, ErrCrashed
	}
	rem := cw.plan.AfterBytes - cw.written
	if int64(len(p)) <= rem {
		n, err := cw.w.Write(p)
		cw.written += int64(n)
		return n, err
	}
	cw.crashed = true
	keep := 0
	if rem > 0 {
		keep = int(rem)
	}
	switch cw.plan.Mode {
	case CrashKill:
		if keep > 0 {
			n, _ := cw.w.Write(p[:keep])
			cw.written += int64(n)
		}
	case CrashTorn:
		if keep > 0 {
			n, _ := cw.w.Write(p[:keep])
			cw.written += int64(n)
		}
		garbage := bytes.Repeat([]byte{0xA5}, len(p)-keep)
		n, _ := cw.w.Write(garbage)
		cw.written += int64(n)
	case CrashDup:
		n, _ := cw.w.Write(p)
		cw.written += int64(n)
		n, _ = cw.w.Write(p)
		cw.written += int64(n)
	}
	return 0, ErrCrashed
}

// Crashed reports whether the planned crash point has been reached.
func (cw *CrashWriter) Crashed() bool { return cw.crashed }

// Written returns the bytes that actually reached the underlying
// writer, including any torn or duplicated tail.
func (cw *CrashWriter) Written() int64 { return cw.written }
