package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
)

// Handler returns the registry's exposition endpoint:
//
//	/metrics    Prometheus text format
//	/debug/vars expvar-compatible JSON with an "hbo_locks" variable
//	/snapshot   obs-snapshot/v1 JSON (deterministic, delta-friendly)
//	/report     hbo-run-report/v1 JSON (the PR 1 schema, live)
//
// The root path serves a one-line index.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.writeExpvar(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Report("obs").WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "hbo lock metrics: /metrics /debug/vars /snapshot /report")
	})
	return mux
}

// writeExpvar emits the standard expvar JSON document (cmdline,
// memstats, and anything else the process published) with the
// registry's snapshot appended as "hbo_locks". Writing the document by
// hand instead of expvar.Publish keeps multiple registries from
// fighting over the process-global expvar namespace.
func (r *Registry) writeExpvar(w http.ResponseWriter) {
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	snap, err := json.Marshal(r.Snapshot())
	if err != nil {
		snap = []byte("null")
	}
	fmt.Fprintf(w, "%q: %s", "hbo_locks", snap)
	fmt.Fprintf(w, "\n}\n")
}

// Serve starts the exposition endpoint on addr (host:port; use :0 for
// an ephemeral port) and returns the bound address. The listener runs
// until closed via the returned closer.
func (r *Registry) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
