// Package obs is the live observability layer for the native locks in
// internal/core: always-on, near-zero-overhead runtime metrics with
// Prometheus/expvar/JSON exposition and runtime/trace flight-recorder
// regions.
//
// # Design
//
// The paper's thesis is that lock performance on NUCA machines is
// governed by where coherence traffic flows — so the observability
// layer must not itself become a coherence hot spot. Measurement on
// this repo's benchmark host showed that a single atomic add placed
// next to a lock's acquire word costs 4–7ns per acquire (up to 50% of
// an uncontended TATAS acquire), while a thread-local plain counter
// plus a branch is unmeasurable. The recording path is therefore split
// in three tiers:
//
//  1. Per-thread cells (one per lock × thread, owned by the acquiring
//     goroutine under the core.Thread contract): plain non-atomic
//     counters — attempts, contended, aborts, spin iterations — and a
//     countdown that selects every Nth acquire for latency sampling.
//     The uncontended fast path touches only this tier.
//  2. Per-node shards (cache-line padded, one per NUCA node): atomic
//     counters plus mutex-guarded wait/hold histograms. Cells flush
//     into the shard of their thread's node — never across nodes — on
//     sampled acquires, contended acquires, aborts, and explicit
//     Sync. Observing a NUMA lock generates no cross-node traffic.
//  3. Snapshots: a Registry walk that merges every shard into one
//     deterministic, byte-stable view. Cross-node reads happen only
//     here, at the observer's request.
//
// Because cells flush lazily, a snapshot may lag the truth by up to
// SampleEvery−1 fast-path acquires per thread; contended acquires and
// aborts always flush, and Instrumented locks expose Sync for exact
// end-of-run accounting. Snapshot/delta semantics are exact with
// respect to flushed state: two snapshots with no intervening flushes
// are byte-identical, and Delta(s1, s2) is exactly the flushed
// activity between them.
//
// Handoff locality (did the lock move between nodes?) is tracked by a
// single last-owner word per lock, updated only on sampled and
// contended acquires — another deliberate trade of exactness for a
// quiet fast path.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// DefaultSampleEvery is the default latency-sampling interval: one in
// every N acquires per thread records wait/hold latency and flushes
// counters. Smaller values tighten snapshot lag and histogram fidelity;
// larger values shrink overhead. 128 keeps the instrumented uncontended
// fast path within the repo's ≤15% overhead budget (see BENCH_obs.json).
const DefaultSampleEvery = 128

// Registry is a process-wide set of instrumented locks. The zero value
// is not usable; call NewRegistry. Instrument and Snapshot are safe for
// concurrent use.
type Registry struct {
	mu    sync.Mutex
	locks map[string]*LockMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{locks: make(map[string]*LockMetrics)}
}

// Default is the process-wide registry used by the package-level
// Instrumented helper and by hbo.MetricsHandler.
var Default = NewRegistry()

// Option configures one instrumented lock.
type Option func(*LockMetrics)

// WithSampleEvery sets the latency-sampling interval (minimum 1: every
// acquire sampled and flushed — exact counters, maximum overhead).
func WithSampleEvery(n int) Option {
	return func(m *LockMetrics) {
		if n < 1 {
			n = 1
		}
		m.sampleEvery = uint32(n)
	}
}

// Instrument wraps l with metrics recorded into this registry under
// name. Names are unique within a registry: a second lock instrumented
// with the same name gets a "#2" (then "#3", …) suffix. The returned
// lock preserves l's timed/try capabilities: if l implements
// core.TimedLock or core.TryLocker, so does the wrapper, and timed-out
// acquires are counted as aborts. If l implements core.Probed (every
// lock in internal/core does), its slow paths report contention and
// spin work through the probe interface at no fast-path cost.
func (r *Registry) Instrument(l core.Lock, name string, opts ...Option) core.Lock {
	m := newLockMetrics(name)
	for _, o := range opts {
		o(m)
	}
	r.mu.Lock()
	if _, taken := r.locks[m.name]; taken {
		base := m.name
		for i := 2; ; i++ {
			cand := fmt.Sprintf("%s#%d", base, i)
			if _, taken := r.locks[cand]; !taken {
				m.name = cand
				break
			}
		}
	}
	r.locks[m.name] = m
	r.mu.Unlock()

	if p, ok := l.(core.Probed); ok {
		p.SetProbe(m)
	}
	return wrap(l, m)
}

// Instrumented wraps l with metrics in the Default registry — the
// one-call entry point: obs.Instrumented(lock, "hot-shard").
func Instrumented(l core.Lock, name string, opts ...Option) core.Lock {
	return Default.Instrument(l, name, opts...)
}

// Lookup returns the metrics registered under name, or nil.
func (r *Registry) Lookup(name string) *LockMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.locks[name]
}

// Names returns the registered lock names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.locks))
	for n := range r.locks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// metricsSorted returns the registered metrics ordered by name.
func (r *Registry) metricsSorted() []*LockMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.locks))
	for n := range r.locks {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*LockMetrics, len(names))
	for i, n := range names {
		out[i] = r.locks[n]
	}
	return out
}
