package obs

import (
	"repro/internal/report"
)

// Report renders the registry's current state in the repo's shared
// hbo-run-report/v1 schema (internal/report), so the tooling that
// parses batch simulation reports reads live native metrics unchanged.
// The machine block records the observed logical topology with preset
// "native"; acquisitions exclude aborted attempts, and HandoffRatio
// keeps the sim semantics (fraction of observed handoffs that crossed
// nodes — lower is more local).
func (r *Registry) Report(tool string) *report.Report {
	snap := r.Snapshot()
	nodes := 0
	for _, l := range snap.Locks {
		for _, nc := range l.PerNode {
			if nc.Node+1 > nodes {
				nodes = nc.Node + 1
			}
		}
	}
	rep := &report.Report{
		Schema:     report.Schema,
		Tool:       tool,
		Experiment: "live",
		Host:       report.Host(),
		Machine:    report.MachineSummary{Nodes: nodes, Preset: "native"},
		Locks:      make([]report.LockReport, len(snap.Locks)),
	}
	for i, l := range snap.Locks {
		acq := l.Attempts - l.Aborts
		lr := report.LockReport{
			Lock:           l.Name,
			Acquisitions:   int(acq),
			Contended:      int(l.Contended),
			SpinIterations: l.SpinIterations,
			Aborts:         int(l.Aborts),
			Wait:           report.QuantilesOfSnapshot(l.Wait),
			Hold:           report.QuantilesOfSnapshot(l.Hold),
			PerThread:      []int{},
			Traffic:        report.TrafficReport{LocalPerNode: []uint64{}},
		}
		if l.Attempts > 0 {
			lr.AbortRate = float64(l.Aborts) / float64(l.Attempts)
		}
		if h := l.HandoffLocal + l.HandoffRemote; h > 0 {
			lr.HandoffRatio = float64(l.HandoffRemote) / float64(h)
		}
		rep.Locks[i] = lr
	}
	return rep
}
