package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// runContended drives iters acquire/release pairs per thread from one
// goroutine per thread, concurrently.
func runContended(l core.Lock, threads []*core.Thread, iters int) {
	var wg sync.WaitGroup
	for _, t := range threads {
		wg.Add(1)
		go func(t *core.Thread) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Acquire(t)
				l.Release(t)
			}
		}(t)
	}
	wg.Wait()
}

func snapshotBytes(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestInstrumentedExactCounts pins the exact-counting mode: with
// SampleEvery(1) every acquire is sampled and flushed, so the snapshot
// matches the activity precisely.
func TestInstrumentedExactCounts(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(1, 1)
	l := r.Instrument(core.NewTATAS(), "exact", WithSampleEvery(1))
	t0 := rt.RegisterThread(0)
	const n = 100
	for i := 0; i < n; i++ {
		l.Acquire(t0)
		l.Release(t0)
	}
	s := r.Snapshot()
	if len(s.Locks) != 1 {
		t.Fatalf("locks = %d", len(s.Locks))
	}
	ls := s.Locks[0]
	if ls.Name != "exact" || ls.Attempts != n || ls.Contended != 0 || ls.Aborts != 0 {
		t.Fatalf("snapshot = %+v", ls)
	}
	if ls.Wait.Count != n || ls.Hold.Count != n {
		t.Fatalf("sampled latencies: wait=%d hold=%d, want %d", ls.Wait.Count, ls.Hold.Count, n)
	}
	if len(ls.PerNode) != 1 || ls.PerNode[0].Attempts != n {
		t.Fatalf("per-node = %+v", ls.PerNode)
	}
}

// TestSamplingLagAndSync pins the flush quantization contract: with
// SampleEvery(k), uncontended acquires between samples stay in the
// thread cell until the next sample or an explicit Sync.
func TestSamplingLagAndSync(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(1, 1)
	l := r.Instrument(core.NewTATAS(), "lagged", WithSampleEvery(8))
	t0 := rt.RegisterThread(0)
	// First acquire is sampled (flushes); the next 7 are not.
	for i := 0; i < 5; i++ {
		l.Acquire(t0)
		l.Release(t0)
	}
	if got := r.Snapshot().Locks[0].Attempts; got != 1 {
		t.Fatalf("flushed attempts = %d, want 1 (only the sampled first)", got)
	}
	l.(InstrumentedLock).Sync(t0)
	if got := r.Snapshot().Locks[0].Attempts; got != 5 {
		t.Fatalf("after Sync attempts = %d, want 5", got)
	}
}

// TestSnapshotDeterminismAllLocks is the satellite determinism matrix:
// for every instrumented lock type, two snapshots with no intervening
// activity are byte-identical, and a delta equals the activity between
// its endpoints.
func TestSnapshotDeterminismAllLocks(t *testing.T) {
	const iters = 50
	for _, name := range core.AllNames() {
		t.Run(name, func(t *testing.T) {
			r := NewRegistry()
			rt := core.NewRuntimeHierarchical(2, 1, 4)
			l := r.Instrument(core.New(name, rt, core.DefaultTuning()), name, WithSampleEvery(1))
			threads := []*core.Thread{rt.RegisterThread(0), rt.RegisterThread(1)}

			runContended(l, threads, iters)
			s1 := r.Snapshot()
			b1 := snapshotBytes(t, r)
			b2 := snapshotBytes(t, r)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("idle snapshots differ:\n%s\nvs\n%s", b1, b2)
			}

			runContended(l, threads, iters)
			s2 := r.Snapshot()
			d := s2.Delta(s1)
			if len(d.Locks) != 1 {
				t.Fatalf("delta locks = %d", len(d.Locks))
			}
			dl := d.Locks[0]
			want := uint64(len(threads) * iters)
			if dl.Attempts != want {
				t.Fatalf("delta attempts = %d, want %d", dl.Attempts, want)
			}
			if dl.Aborts != 0 {
				t.Fatalf("delta aborts = %d", dl.Aborts)
			}
			if dl.Wait.Count != want || dl.Hold.Count != want {
				t.Fatalf("delta sampled: wait=%d hold=%d, want %d", dl.Wait.Count, dl.Hold.Count, want)
			}
			var nodeSum uint64
			for _, nc := range dl.PerNode {
				nodeSum += nc.Attempts
			}
			if nodeSum != want {
				t.Fatalf("delta per-node sum = %d, want %d", nodeSum, want)
			}
			// A delta against the identical snapshot is all zeroes.
			z := s2.Delta(s2).Locks[0]
			if z.Attempts != 0 || z.Contended != 0 || z.SpinIterations != 0 ||
				z.Wait.Count != 0 || z.Hold.Count != 0 {
				t.Fatalf("self-delta nonzero: %+v", z)
			}
		})
	}
}

// TestShardedRecordVsMergeRace is the -race exercise promised by the
// stats.Histogram concurrency contract: one goroutine records latencies
// through the sampled sharded path while another merges shard
// histograms via Snapshot. The shard mutex must make this clean.
func TestShardedRecordVsMergeRace(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(2, 2)
	l := r.Instrument(core.NewTATAS(), "raced", WithSampleEvery(1))
	t0 := rt.RegisterThread(0)
	t1 := rt.RegisterThread(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, th := range []*core.Thread{t0, t1} {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Acquire(th)
				l.Release(th)
			}
		}(th)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var last Snapshot
	for time.Now().Before(deadline) {
		last = r.Snapshot()
	}
	close(stop)
	wg.Wait()
	final := r.Snapshot()
	if final.Locks[0].Attempts < last.Locks[0].Attempts {
		t.Fatalf("attempts went backwards: %d then %d",
			last.Locks[0].Attempts, final.Locks[0].Attempts)
	}
	if final.Locks[0].Attempts == 0 {
		t.Fatal("no activity recorded")
	}
}

// TestAbortsAndTries pins abort accounting for timed and non-blocking
// acquires: both count as attempts and aborts, and flush immediately.
func TestAbortsAndTries(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(1, 2)
	l := r.Instrument(core.NewHBO(rt, core.DefaultTuning()), "hbo", WithSampleEvery(1))
	timed := l.(core.TimedLock)
	try := l.(core.TryLocker)
	t0 := rt.RegisterThread(0)
	t1 := rt.RegisterThread(0)

	l.Acquire(t0)
	if timed.AcquireFor(t1, time.Millisecond) {
		t.Fatal("timed acquire succeeded against a held lock")
	}
	if try.TryAcquire(t1) {
		t.Fatal("try succeeded against a held lock")
	}
	l.Release(t0)

	ls := r.Snapshot().Locks[0]
	if ls.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", ls.Attempts)
	}
	if ls.Aborts != 2 {
		t.Fatalf("aborts = %d, want 2", ls.Aborts)
	}
	if ls.Contended < 1 {
		t.Fatalf("contended = %d, want >= 1", ls.Contended)
	}
	// The successful holder's acquire+release still sampled cleanly.
	if ls.Hold.Count != 1 {
		t.Fatalf("hold samples = %d, want 1", ls.Hold.Count)
	}
}

// TestHandoffLocality drives a deterministic handoff sequence and
// checks the local/remote split.
func TestHandoffLocality(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(2, 3)
	l := r.Instrument(core.NewTATAS(), "handoff", WithSampleEvery(1))
	a := rt.RegisterThread(0)
	b := rt.RegisterThread(0)
	c := rt.RegisterThread(1)
	for _, th := range []*core.Thread{a, b, c, a} { // a->b local, b->c remote, c->a remote
		l.Acquire(th)
		l.Release(th)
	}
	ls := r.Snapshot().Locks[0]
	if ls.HandoffLocal != 1 || ls.HandoffRemote != 2 {
		t.Fatalf("handoffs local=%d remote=%d, want 1/2", ls.HandoffLocal, ls.HandoffRemote)
	}
	if got := ls.LocalityRatio(); got <= 0.33 || got >= 0.34 {
		t.Fatalf("locality ratio = %v", got)
	}
}

// TestRegistryNameDedup pins the collision policy.
func TestRegistryNameDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Instrument(core.NewTATAS(), "dup")
	b := r.Instrument(core.NewTATAS(), "dup")
	c := r.Instrument(core.NewTATAS(), "dup")
	if a.Name() != "dup" || b.Name() != "dup#2" || c.Name() != "dup#3" {
		t.Fatalf("names = %q %q %q", a.Name(), b.Name(), c.Name())
	}
	if got := r.Names(); len(got) != 3 {
		t.Fatalf("registry names = %v", got)
	}
}

// TestWrapperPreservesCapabilities checks the wrapper picks the variant
// matching the underlying lock's interfaces.
func TestWrapperPreservesCapabilities(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(1, 4)
	tatas := r.Instrument(core.NewTATAS(), "cap-tatas")
	if _, ok := tatas.(core.TimedLock); !ok {
		t.Error("instrumented TATAS lost TimedLock")
	}
	if _, ok := tatas.(core.TryLocker); !ok {
		t.Error("instrumented TATAS lost TryLocker")
	}
	mcs := r.Instrument(core.NewMCS(rt), "cap-mcs")
	if _, ok := mcs.(core.TimedLock); ok {
		t.Error("instrumented MCS gained TimedLock")
	}
	if _, ok := mcs.(core.TryLocker); !ok {
		t.Error("instrumented MCS lost TryLocker")
	}
	clh := r.Instrument(core.NewCLH(rt), "cap-clh")
	if _, ok := clh.(core.TryLocker); ok {
		t.Error("instrumented CLH gained TryLocker")
	}
	il := clh.(InstrumentedLock)
	if il.Unwrap().Name() != "CLH" || clh.Name() != "cap-clh" {
		t.Errorf("names: wrapper %q inner %q", clh.Name(), il.Unwrap().Name())
	}
	if il.Metrics() == nil || r.Lookup("cap-clh") != il.Metrics() {
		t.Error("metrics lookup mismatch")
	}
}

// fakeLock is a probe-firing stub: Acquire "contends" on demand, which
// lets the test drive the probe path deterministically.
type fakeLock struct {
	p       core.Probe
	contend bool
}

func (f *fakeLock) Name() string           { return "FAKE" }
func (f *fakeLock) SetProbe(p core.Probe)  { f.p = p }
func (f *fakeLock) Release(t *core.Thread) {}
func (f *fakeLock) Acquire(t *core.Thread) {
	if f.contend && f.p != nil {
		f.p.Contended(t)
		f.p.Contended(t) // multi-stage locks may fire twice; must dedup
		f.p.Spun(t, 7)
	}
}

// TestContendedProbeCounts checks that contended acquires count once
// (despite repeated probe fires) and flush via the contention path even
// when the acquire is not latency-sampled.
func TestContendedProbeCounts(t *testing.T) {
	r := NewRegistry()
	rt := core.NewRuntime(1, 1)
	f := &fakeLock{}
	// Huge sample interval: after the first acquire, only the probe's
	// in-slow-path flag can trigger a flush.
	l := r.Instrument(f, "probe", WithSampleEvery(1<<20))
	t0 := rt.RegisterThread(0)

	l.Acquire(t0) // sampled first acquire, flushes
	l.Release(t0)
	f.contend = true
	l.Acquire(t0) // unsampled, but contended → counts and flushes
	l.Release(t0)
	f.contend = false
	l.Acquire(t0) // unsampled, uncontended → stays in the cell
	l.Release(t0)

	ls := r.Snapshot().Locks[0]
	if ls.Contended != 1 {
		t.Fatalf("contended = %d, want 1 (deduped)", ls.Contended)
	}
	if ls.SpinIterations != 7 {
		t.Fatalf("spin iterations = %d, want 7", ls.SpinIterations)
	}
	if ls.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (third acquire unflushed)", ls.Attempts)
	}
}
