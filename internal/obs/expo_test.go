package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
)

// activeRegistry builds a registry with deterministic activity on two
// locks across two nodes.
func activeRegistry(t *testing.T) (*Registry, uint64) {
	t.Helper()
	r := NewRegistry()
	rt := core.NewRuntime(2, 2)
	a := r.Instrument(core.NewTATAS(), "alpha", WithSampleEvery(1))
	b := r.Instrument(core.NewTicket(), "beta", WithSampleEvery(1))
	t0 := rt.RegisterThread(0)
	t1 := rt.RegisterThread(1)
	const n = 25
	for i := 0; i < n; i++ {
		a.Acquire(t0)
		a.Release(t0)
		b.Acquire(t1)
		b.Release(t1)
	}
	return r, n
}

func TestPrometheusExposition(t *testing.T) {
	r, n := activeRegistry(t)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("idle Prometheus exposition not byte-stable")
	}

	samples, err := ParsePrometheus(buf.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, lock := range []string{"alpha", "beta"} {
		s := FindSample(samples, "hbo_lock_attempts_total", map[string]string{"lock": lock})
		if s == nil {
			t.Fatalf("missing attempts sample for %q", lock)
		}
		if s.Value != float64(n) {
			t.Fatalf("%s attempts = %v, want %d", lock, s.Value, n)
		}
	}
	if s := FindSample(samples, "hbo_lock_wait_ns", map[string]string{"lock": "alpha", "quantile": "0.99"}); s == nil {
		t.Fatal("missing wait summary quantile")
	}
	if s := FindSample(samples, "hbo_lock_wait_ns_count", map[string]string{"lock": "alpha"}); s == nil || s.Value != float64(n) {
		t.Fatalf("wait summary count sample = %+v", s)
	}
	if s := FindSample(samples, "hbo_lock_node_attempts_total", map[string]string{"lock": "beta", "node": "1"}); s == nil || s.Value != float64(n) {
		t.Fatalf("per-node sample = %+v", s)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		`metric{unterminated="x" 1`,
		`metric{lock=unquoted} 1`,
		"metric{} not-a-number",
	} {
		if _, err := ParsePrometheus(bad); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted garbage", bad)
		}
	}
	// Timestamps and untyped lines are fine.
	s, err := ParsePrometheus("m{a=\"b\"} 4.5 1712000000\nplain 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Value != 4.5 || s[1].Name != "plain" {
		t.Fatalf("parsed = %+v", s)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r, n := activeRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if _, err := ParsePrometheus(string(get("/metrics"))); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/snapshot"), &snap); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if snap.Schema != SnapshotSchema || len(snap.Locks) != 2 || snap.Locks[0].Attempts != n {
		t.Fatalf("/snapshot = %+v", snap)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing standard memstats var")
	}
	var embedded Snapshot
	if err := json.Unmarshal(vars["hbo_locks"], &embedded); err != nil {
		t.Fatalf("hbo_locks var: %v", err)
	}
	if embedded.Schema != SnapshotSchema {
		t.Fatalf("hbo_locks schema = %q", embedded.Schema)
	}

	var rep map[string]any
	if err := json.Unmarshal(get("/report"), &rep); err != nil {
		t.Fatalf("/report: %v", err)
	}
	if rep["schema"] != "hbo-run-report/v1" {
		t.Fatalf("/report schema = %v", rep["schema"])
	}
	if _, ok := rep["host"].(map[string]any); !ok {
		t.Fatal("/report missing host block")
	}
}

func TestLiveReportMapping(t *testing.T) {
	r, n := activeRegistry(t)
	rep := r.Report("test")
	if rep.Machine.Preset != "native" || rep.Machine.Nodes != 2 {
		t.Fatalf("machine = %+v", rep.Machine)
	}
	if len(rep.Locks) != 2 {
		t.Fatalf("locks = %d", len(rep.Locks))
	}
	alpha := rep.Locks[0]
	if alpha.Lock != "alpha" || alpha.Acquisitions != int(n) || alpha.Aborts != 0 {
		t.Fatalf("alpha = %+v", alpha)
	}
	if alpha.Wait.Count != n || alpha.Hold.Count != n {
		t.Fatalf("alpha quantiles: wait=%d hold=%d", alpha.Wait.Count, alpha.Hold.Count)
	}
	var buf1, buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Report("test").WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("idle live reports not byte-identical")
	}
}
