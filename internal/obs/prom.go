package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Prometheus text exposition, hand-written against the format spec so
// the repo stays dependency-free. Output is deterministic: locks sort
// by name, metrics emit in a fixed order, and label sets are rendered
// in a fixed sequence — stable state produces stable bytes, the same
// contract snapshots keep.

// promMetric describes one exported metric family.
type promMetric struct {
	name, typ, help string
}

var promFamilies = []promMetric{
	{"hbo_lock_attempts_total", "counter", "Lock acquire attempts, including aborted and failed non-blocking ones."},
	{"hbo_lock_contended_total", "counter", "Acquires that entered a wait loop."},
	{"hbo_lock_aborts_total", "counter", "Timed-out or failed non-blocking acquires."},
	{"hbo_lock_spin_iterations_total", "counter", "Spin/backoff iterations reported by lock slow paths."},
	{"hbo_lock_handoffs_total", "counter", "Observed lock handoffs by locality (sampled and contended acquires only)."},
	{"hbo_lock_node_attempts_total", "counter", "Lock acquire attempts per NUCA node shard."},
	{"hbo_lock_wait_ns", "summary", "Sampled acquire wait latency in nanoseconds."},
	{"hbo_lock_hold_ns", "summary", "Sampled critical-section hold latency in nanoseconds."},
}

// WritePrometheus renders the registry's current state in Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

// WritePrometheus renders an already-taken snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, s)
}

func writePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	for _, fam := range promFamilies {
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, l := range s.Locks {
			switch fam.name {
			case "hbo_lock_attempts_total":
				promLine(&b, fam.name, lbl(l.Name), float64(l.Attempts))
			case "hbo_lock_contended_total":
				promLine(&b, fam.name, lbl(l.Name), float64(l.Contended))
			case "hbo_lock_aborts_total":
				promLine(&b, fam.name, lbl(l.Name), float64(l.Aborts))
			case "hbo_lock_spin_iterations_total":
				promLine(&b, fam.name, lbl(l.Name), float64(l.SpinIterations))
			case "hbo_lock_handoffs_total":
				promLine(&b, fam.name, lbl(l.Name)+`,locality="local"`, float64(l.HandoffLocal))
				promLine(&b, fam.name, lbl(l.Name)+`,locality="remote"`, float64(l.HandoffRemote))
			case "hbo_lock_node_attempts_total":
				for _, nc := range l.PerNode {
					promLine(&b, fam.name, lbl(l.Name)+`,node="`+strconv.Itoa(nc.Node)+`"`, float64(nc.Attempts))
				}
			case "hbo_lock_wait_ns":
				promSummary(&b, fam.name, l.Name, l.Wait)
			case "hbo_lock_hold_ns":
				promSummary(&b, fam.name, l.Name, l.Hold)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func lbl(lock string) string { return `lock="` + escapeLabel(lock) + `"` }

func promLine(b *strings.Builder, name, labels string, v float64) {
	fmt.Fprintf(b, "%s{%s} %s\n", name, labels, formatPromValue(v))
}

func promSummary(b *strings.Builder, name, lock string, h stats.HistogramSnapshot) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(b, "%s{%s,quantile=\"%s\"} %s\n",
			name, lbl(lock), trimFloat(q), formatPromValue(float64(h.Quantile(q))))
	}
	promLine(b, name+"_sum", lbl(lock), float64(h.Sum))
	promLine(b, name+"_count", lbl(lock), float64(h.Count))
}

func trimFloat(q float64) string { return strconv.FormatFloat(q, 'g', -1, 64) }

// formatPromValue renders a float the way Prometheus clients do.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// PromSample is one parsed exposition line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus parses text exposition format into samples. It
// understands the subset this package emits (and that common clients
// emit): # HELP / # TYPE comments, blank lines, and
// name{label="value",...} value lines. A malformed line is an error —
// CI uses this to validate the /metrics endpoint.
func ParsePrometheus(data string) ([]PromSample, error) {
	var out []PromSample
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may trail the value; take the first field.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(in string, out map[string]string) error {
	for in != "" {
		eq := strings.Index(in, "=")
		if eq < 0 {
			return fmt.Errorf("label without '='")
		}
		key := in[:eq]
		in = in[eq+1:]
		if !strings.HasPrefix(in, `"`) {
			return fmt.Errorf("unquoted label value")
		}
		in = in[1:]
		var val strings.Builder
		for {
			if in == "" {
				return fmt.Errorf("unterminated label value")
			}
			c := in[0]
			if c == '\\' && len(in) >= 2 {
				switch in[1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[1])
				}
				in = in[2:]
				continue
			}
			in = in[1:]
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		out[key] = val.String()
		in = strings.TrimPrefix(in, ",")
	}
	return nil
}

// FindSample returns the first sample matching name and all given
// label constraints, or nil.
func FindSample(samples []PromSample, name string, labels map[string]string) *PromSample {
	for i := range samples {
		s := &samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}
