package obs

import (
	"encoding/json"
	"io"

	"repro/internal/stats"
)

// SnapshotSchema versions the live metrics snapshot format.
const SnapshotSchema = "obs-snapshot/v1"

// NodeCounts is one node shard's view of a lock: the activity recorded
// by threads registered on that node.
type NodeCounts struct {
	Node           int    `json:"node"`
	Attempts       uint64 `json:"attempts"`
	Contended      uint64 `json:"contended"`
	Aborts         uint64 `json:"aborts"`
	SpinIterations int64  `json:"spin_iterations"`
	HandoffLocal   uint64 `json:"handoff_local"`
	HandoffRemote  uint64 `json:"handoff_remote"`
}

func (n NodeCounts) sub(o NodeCounts) NodeCounts {
	return NodeCounts{
		Node:           n.Node,
		Attempts:       subU(n.Attempts, o.Attempts),
		Contended:      subU(n.Contended, o.Contended),
		Aborts:         subU(n.Aborts, o.Aborts),
		SpinIterations: subI(n.SpinIterations, o.SpinIterations),
		HandoffLocal:   subU(n.HandoffLocal, o.HandoffLocal),
		HandoffRemote:  subU(n.HandoffRemote, o.HandoffRemote),
	}
}

// LockSnapshot is one lock's merged view at snapshot time. Attempts
// counts acquire attempts including aborted ones, so successful
// acquisitions are Attempts - Aborts. Handoff counts cover sampled and
// contended acquires only (see the package comment on the last-owner
// word); wait/hold histograms hold the sampled latencies in
// nanoseconds.
type LockSnapshot struct {
	Name           string                  `json:"name"`
	Attempts       uint64                  `json:"attempts"`
	Contended      uint64                  `json:"contended"`
	Aborts         uint64                  `json:"aborts"`
	SpinIterations int64                   `json:"spin_iterations"`
	HandoffLocal   uint64                  `json:"handoff_local"`
	HandoffRemote  uint64                  `json:"handoff_remote"`
	PerNode        []NodeCounts            `json:"per_node,omitempty"`
	Wait           stats.HistogramSnapshot `json:"wait"`
	Hold           stats.HistogramSnapshot `json:"hold"`
}

// LocalityRatio returns the fraction of observed handoffs that stayed
// within a node (1 when no handoffs were observed — an unmoved lock is
// perfectly local).
func (l LockSnapshot) LocalityRatio() float64 {
	total := l.HandoffLocal + l.HandoffRemote
	if total == 0 {
		return 1
	}
	return float64(l.HandoffLocal) / float64(total)
}

// Snapshot is a deterministic view of a registry: locks sorted by name,
// no timestamps, stable bytes for stable state. Two snapshots taken
// with no intervening flushed activity are byte-identical.
type Snapshot struct {
	Schema string         `json:"schema"`
	Locks  []LockSnapshot `json:"locks"`
}

// Snapshot captures the registry's current flushed state.
func (r *Registry) Snapshot() Snapshot {
	ms := r.metricsSorted()
	snap := Snapshot{Schema: SnapshotSchema, Locks: make([]LockSnapshot, len(ms))}
	for i, m := range ms {
		snap.Locks[i] = m.SnapshotLock()
	}
	return snap
}

// SnapshotLock captures one lock's merged state: shard counters are
// summed and shard histograms merged, so the cross-node reads the
// recording paths avoid happen here, once, on the observer's side.
func (m *LockMetrics) SnapshotLock() LockSnapshot {
	ls := LockSnapshot{Name: m.name}
	var wait, hold stats.Histogram
	if shards := m.shards.Load(); shards != nil {
		for node, s := range *shards {
			if s == nil {
				continue
			}
			nc := NodeCounts{
				Node:           node,
				Attempts:       s.attempts.Load(),
				Contended:      s.contended.Load(),
				Aborts:         s.aborts.Load(),
				SpinIterations: s.spins.Load(),
				HandoffLocal:   s.handoffLocal.Load(),
				HandoffRemote:  s.handoffRemote.Load(),
			}
			s.mu.Lock()
			wait.Merge(&s.wait)
			hold.Merge(&s.hold)
			s.mu.Unlock()
			ls.Attempts += nc.Attempts
			ls.Contended += nc.Contended
			ls.Aborts += nc.Aborts
			ls.SpinIterations += nc.SpinIterations
			ls.HandoffLocal += nc.HandoffLocal
			ls.HandoffRemote += nc.HandoffRemote
			ls.PerNode = append(ls.PerNode, nc)
		}
	}
	ls.Wait = wait.Snapshot()
	ls.Hold = hold.Snapshot()
	return ls
}

// Delta returns the activity between earlier and s: counters subtract
// (clamped at zero) and histograms difference bucket-wise, per lock by
// name. Locks absent from earlier pass through unchanged; locks absent
// from s are dropped. For snapshots s2 taken after s1 with quiesced
// recording at both points, s2.Delta(s1) is exactly the activity
// flushed in between.
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	prev := make(map[string]LockSnapshot, len(earlier.Locks))
	for _, l := range earlier.Locks {
		prev[l.Name] = l
	}
	out := Snapshot{Schema: s.Schema, Locks: make([]LockSnapshot, 0, len(s.Locks))}
	for _, l := range s.Locks {
		p, ok := prev[l.Name]
		if !ok {
			out.Locks = append(out.Locks, l)
			continue
		}
		d := LockSnapshot{
			Name:           l.Name,
			Attempts:       subU(l.Attempts, p.Attempts),
			Contended:      subU(l.Contended, p.Contended),
			Aborts:         subU(l.Aborts, p.Aborts),
			SpinIterations: subI(l.SpinIterations, p.SpinIterations),
			HandoffLocal:   subU(l.HandoffLocal, p.HandoffLocal),
			HandoffRemote:  subU(l.HandoffRemote, p.HandoffRemote),
		}
		prevNodes := make(map[int]NodeCounts, len(p.PerNode))
		for _, nc := range p.PerNode {
			prevNodes[nc.Node] = nc
		}
		for _, nc := range l.PerNode {
			d.PerNode = append(d.PerNode, nc.sub(prevNodes[nc.Node]))
		}
		wh := l.Wait.Histogram()
		wh.Sub(p.Wait.Histogram())
		d.Wait = wh.Snapshot()
		hh := l.Hold.Histogram()
		hh.Sub(p.Hold.Histogram())
		d.Hold = hh.Snapshot()
		out.Locks = append(out.Locks, d)
	}
	return out
}

// WriteJSON emits the snapshot as indented JSON; bytes are stable for a
// fixed snapshot (struct fields encode in declaration order).
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func subU(a, b uint64) uint64 {
	if b >= a {
		return 0
	}
	return a - b
}

func subI(a, b int64) int64 {
	if b >= a {
		return 0
	}
	return a - b
}
