package obs

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
)

// The observability contract is that instrumentation is cheap enough to
// leave on: the uncontended acquire/release fast path through an
// instrumented lock must stay within 15% of the raw lock through the
// same interface dispatch. The benchmarks below measure it; the guard
// test enforces it when HBO_OBS_OVERHEAD_GUARD=1 (CI runs it in a
// dedicated step so scheduler noise cannot flake the main test job).
//
// Numbers for this host live in BENCH_obs.json. Reproduce with:
//
//	go test -run '^$' -bench 'Uncontended' -count 5 ./internal/obs/
//	HBO_OBS_OVERHEAD_GUARD=1 go test -run TestOverheadGuard -v ./internal/obs/

func benchLock(raw bool) (core.Lock, *core.Thread) {
	rt := core.NewRuntime(1, 1)
	t := rt.RegisterThread(0)
	var l core.Lock = core.NewTATAS()
	if !raw {
		l = NewRegistry().Instrument(l, "bench")
	}
	return l, t
}

func benchAcquireRelease(b *testing.B, raw bool) {
	l, t := benchLock(raw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Acquire(t)
		l.Release(t)
	}
}

func BenchmarkUncontendedRaw(b *testing.B)          { benchAcquireRelease(b, true) }
func BenchmarkUncontendedInstrumented(b *testing.B) { benchAcquireRelease(b, false) }

// measureNsPerOp returns the minimum ns/op over rounds benchmark runs —
// minimum, because overhead measurements care about the undisturbed
// cost and every disturbance is additive noise.
func measureNsPerOp(raw bool, rounds int) float64 {
	best := 0.0
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(func(b *testing.B) { benchAcquireRelease(b, raw) })
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestOverheadGuard fails if the instrumented uncontended fast path
// regresses more than 15% over the raw lock. Gated behind an
// environment variable because it is a timing assertion: run it alone
// on an otherwise idle machine.
func TestOverheadGuard(t *testing.T) {
	if os.Getenv("HBO_OBS_OVERHEAD_GUARD") != "1" {
		t.Skip("set HBO_OBS_OVERHEAD_GUARD=1 to run the timing guard")
	}
	const rounds = 5
	// Interleave one warmup of each side before measuring.
	measureNsPerOp(true, 1)
	measureNsPerOp(false, 1)
	raw := measureNsPerOp(true, rounds)
	inst := measureNsPerOp(false, rounds)
	overhead := (inst - raw) / raw * 100
	t.Logf("raw=%.2fns/op instrumented=%.2fns/op overhead=%.1f%%", raw, inst, overhead)
	if inst > raw*1.15 {
		t.Fatalf("instrumented uncontended acquire/release %.2fns/op exceeds raw %.2fns/op by %.1f%% (budget 15%%)",
			inst, raw, overhead)
	}
	fmt.Printf("obs-overhead-guard: raw=%.2f instrumented=%.2f overhead=%.1f%% budget=15%%\n", raw, inst, overhead)
}
