package obs

import (
	"context"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// threadCell is one lock's per-thread recording state. It is owned by
// the thread's goroutine (the core.Thread contract: one goroutine at a
// time), so every field is plain memory — no atomics, no cache-line
// ping-pong with other threads' cells. The trailing pad keeps two cells
// allocated back-to-back from sharing a line.
type threadCell struct {
	attempts  uint64 // unflushed acquires
	contended uint64 // unflushed contended acquires
	aborts    uint64 // unflushed timed-out acquires
	spins     int64  // unflushed spin/backoff iterations
	left      uint32 // acquires until the next latency sample
	sampled   bool   // current acquire is latency-sampled
	inSlow    bool   // current acquire already counted as contended
	node      int    // owning thread's node, fixed at creation

	waitStart time.Time // acquire entry (sampled acquires only)
	holdStart time.Time // acquire completion (sampled acquires only)

	waitRegion *trace.Region // flight-recorder wait phase, sampled only
	holdRegion *trace.Region // flight-recorder hold phase, sampled only

	_ [64]byte
}

// nodeShard is one lock's per-node aggregation point. Counters are
// atomic (any thread of the node may flush concurrently); the
// histograms are guarded by mu, taken only on sampled flushes and at
// snapshot time — this shard-mutex discipline is the documented safe
// concurrent path for stats.Histogram.
type nodeShard struct {
	attempts      atomic.Uint64
	contended     atomic.Uint64
	aborts        atomic.Uint64
	spins         atomic.Int64
	handoffLocal  atomic.Uint64
	handoffRemote atomic.Uint64
	_             [16]byte // pad the counter block to a cache line

	mu   sync.Mutex
	wait stats.Histogram // sampled wait latencies, ns
	hold stats.Histogram // sampled hold latencies, ns
}

// LockMetrics collects one instrumented lock's runtime metrics. It
// implements core.Probe so the lock's own slow paths report contention
// and spin work directly. All recording entry points require the
// core.Thread that performs the operation.
type LockMetrics struct {
	name        string
	regionWait  string // precomputed runtime/trace region names
	regionHold  string
	sampleEvery uint32

	// lastOwner holds node+1 of the last observed owner (0 = none yet).
	// Updated only on sampled and contended acquires, so uncontended
	// runs of fast-path acquires never touch this shared word.
	lastOwner atomic.Int64

	mu     sync.Mutex // guards growth of cells and shards
	cells  atomic.Pointer[[]*threadCell]
	shards atomic.Pointer[[]*nodeShard]
}

func newLockMetrics(name string) *LockMetrics {
	return &LockMetrics{
		name:        name,
		regionWait:  "lock:" + name + ":wait",
		regionHold:  "lock:" + name + ":hold",
		sampleEvery: DefaultSampleEvery,
	}
}

// Name returns the registered name.
func (m *LockMetrics) Name() string { return m.name }

// cellFast returns t's cell if it already exists, else nil. This is the
// whole fast-path lookup: one pointer load, one bounds check, one index.
func (m *LockMetrics) cellFast(t *core.Thread) *threadCell {
	if cells := m.cells.Load(); cells != nil {
		if id := t.ID(); id < len(*cells) {
			return (*cells)[id]
		}
	}
	return nil
}

// cell returns t's cell, creating it on first use.
func (m *LockMetrics) cell(t *core.Thread) *threadCell {
	if c := m.cellFast(t); c != nil {
		return c
	}
	return m.growCell(t)
}

func (m *LockMetrics) growCell(t *core.Thread) *threadCell {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := t.ID()
	var cur []*threadCell
	if p := m.cells.Load(); p != nil {
		cur = *p
	}
	if id < len(cur) && cur[id] != nil {
		return cur[id]
	}
	next := make([]*threadCell, len(cur))
	copy(next, cur)
	for len(next) <= id {
		next = append(next, nil)
	}
	// left starts at 0 so a thread's first acquire is always sampled —
	// short runs still get latency data and a prompt first flush.
	c := &threadCell{node: t.Node()}
	next[id] = c
	m.cells.Store(&next)
	return c
}

// shard returns node's shard, creating it on first use. Only flush
// paths call this, never the fast path.
func (m *LockMetrics) shard(node int) *nodeShard {
	if shards := m.shards.Load(); shards != nil && node < len(*shards) {
		if s := (*shards)[node]; s != nil {
			return s
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var cur []*nodeShard
	if p := m.shards.Load(); p != nil {
		cur = *p
	}
	if node < len(cur) && cur[node] != nil {
		return cur[node]
	}
	next := make([]*nodeShard, len(cur))
	copy(next, cur)
	for len(next) <= node {
		next = append(next, nil)
	}
	s := &nodeShard{}
	next[node] = s
	m.shards.Store(&next)
	return s
}

// acquireStart begins accounting for one acquire. It is the entire
// pre-acquire fast path: cell lookup, one increment, one countdown.
func (m *LockMetrics) acquireStart(t *core.Thread) *threadCell {
	c := m.cell(t)
	c.attempts++
	c.inSlow = false
	if c.left == 0 {
		c.sampled = true
		c.left = m.sampleEvery - 1
		c.waitStart = time.Now()
		if trace.IsEnabled() {
			c.waitRegion = trace.StartRegion(context.Background(), m.regionWait)
		}
	} else {
		c.sampled = false
		c.left--
	}
	return c
}

// acquireDone completes accounting after the lock is held. The common
// case (unsampled, uncontended) is a two-flag check.
func (m *LockMetrics) acquireDone(t *core.Thread, c *threadCell) {
	if c.sampled || c.inSlow {
		m.acquireDoneSlow(t, c)
	}
}

func (m *LockMetrics) acquireDoneSlow(t *core.Thread, c *threadCell) {
	c.inSlow = false // re-establish the fast-path invariant
	s := m.shard(c.node)
	if c.sampled {
		now := time.Now()
		wait := now.Sub(c.waitStart).Nanoseconds()
		c.holdStart = now
		if c.waitRegion != nil {
			c.waitRegion.End()
			c.waitRegion = nil
		}
		if trace.IsEnabled() {
			c.holdRegion = trace.StartRegion(context.Background(), m.regionHold)
		}
		s.mu.Lock()
		s.wait.Add(wait)
		s.mu.Unlock()
	}
	m.flush(c, s)
	// Handoff locality, tracked at sampled/contended granularity: the
	// new holder writes its node and learns the previous one.
	prev := m.lastOwner.Swap(int64(c.node) + 1)
	if prev != 0 {
		if int(prev)-1 == c.node {
			s.handoffLocal.Add(1)
		} else {
			s.handoffRemote.Add(1)
		}
	}
}

// flush moves the cell's unflushed counters into its node shard.
func (m *LockMetrics) flush(c *threadCell, s *nodeShard) {
	if c.attempts > 0 {
		s.attempts.Add(c.attempts)
		c.attempts = 0
	}
	if c.contended > 0 {
		s.contended.Add(c.contended)
		c.contended = 0
	}
	if c.aborts > 0 {
		s.aborts.Add(c.aborts)
		c.aborts = 0
	}
	if c.spins > 0 {
		s.spins.Add(c.spins)
		c.spins = 0
	}
}

// releasePre runs before the underlying release: it closes the hold
// window while the timestamp is still meaningful and returns the hold
// latency to record, or -1. The histogram write happens in releasePost,
// after the lock is no longer held, so the shard mutex never extends a
// critical section.
func (m *LockMetrics) releasePre(t *core.Thread) (*threadCell, int64) {
	c := m.cellFast(t)
	if c == nil || !c.sampled {
		return c, -1
	}
	c.sampled = false
	hold := time.Since(c.holdStart).Nanoseconds()
	if c.holdRegion != nil {
		c.holdRegion.End()
		c.holdRegion = nil
	}
	return c, hold
}

// releasePost records a sampled hold latency after the lock is free.
func (m *LockMetrics) releasePost(c *threadCell, hold int64) {
	if hold < 0 {
		return
	}
	s := m.shard(c.node)
	s.mu.Lock()
	s.hold.Add(hold)
	s.mu.Unlock()
}

// abort accounts a timed acquire that gave up: the attempt becomes an
// abort and everything flushes immediately (an abort is rare and
// already slow — exact visibility wins).
func (m *LockMetrics) abort(t *core.Thread, c *threadCell) {
	c.aborts++
	c.sampled = false
	c.inSlow = false
	if c.waitRegion != nil {
		c.waitRegion.End()
		c.waitRegion = nil
	}
	m.flush(c, m.shard(c.node))
}

// Sync flushes t's unflushed counters for this lock. Call it from the
// owning goroutine when exact counts are needed (end of a run, before a
// final snapshot). It must not run concurrently with an acquire by the
// same thread.
func (m *LockMetrics) Sync(t *core.Thread) {
	if c := m.cellFast(t); c != nil {
		m.flush(c, m.shard(c.node))
	}
}

// Contended implements core.Probe: the lock's slow path reports that t
// is about to wait. Multi-stage locks may fire this more than once per
// acquire; the inSlow flag dedups to at most one contended count per
// acquire.
func (m *LockMetrics) Contended(t *core.Thread) {
	c := m.cellFast(t)
	if c == nil || c.inSlow {
		return
	}
	c.inSlow = true
	c.contended++
}

// Spun implements core.Probe: the lock's slow path reports n spin or
// backoff iterations.
func (m *LockMetrics) Spun(t *core.Thread, n int64) {
	if c := m.cellFast(t); c != nil {
		c.spins += n
	}
}

var _ core.Probe = (*LockMetrics)(nil)
