package obs

import (
	"time"

	"repro/internal/core"
)

// InstrumentedLock is implemented by every lock returned from
// Instrument: the core.Lock surface plus access to the metrics and the
// residue-flushing Sync. Wrappers additionally preserve the underlying
// lock's core.TimedLock / core.TryLocker capabilities — type-assert for
// those as usual.
type InstrumentedLock interface {
	core.Lock
	// Metrics returns the lock's collector.
	Metrics() *LockMetrics
	// Sync flushes thread t's unflushed counters (see LockMetrics.Sync).
	Sync(t *core.Thread)
	// Unwrap returns the uninstrumented lock.
	Unwrap() core.Lock
}

// wrap picks the thinnest wrapper that preserves l's capabilities.
func wrap(l core.Lock, m *LockMetrics) core.Lock {
	base := instLock{m: m, l: l}
	timed, isTimed := l.(core.TimedLock)
	try, isTry := l.(core.TryLocker)
	switch {
	case isTimed && isTry:
		return &instTimedTryLock{instLock: base, timed: timed, try: try}
	case isTimed:
		return &instTimedLock{instLock: base, timed: timed}
	case isTry:
		return &instTryLock{instLock: base, try: try}
	default:
		return &base
	}
}

// instLock instruments a plain core.Lock.
type instLock struct {
	m *LockMetrics
	l core.Lock
}

// Name returns the registered metrics name (which dedup may have
// suffixed), not the algorithm name — Unwrap().Name() has that.
func (w *instLock) Name() string { return w.m.name }

// Acquire acquires the underlying lock, recording the attempt. The
// body open-codes the cell lookup and countdown (rather than calling
// LockMetrics.acquireStart) so the uncontended, unsampled path — the
// one the ≤15% overhead budget is measured on — runs with no calls
// besides the lock's own: a pointer load, an index, three field writes.
func (w *instLock) Acquire(t *core.Thread) {
	if cells := w.m.cells.Load(); cells != nil {
		if id := t.ID(); id < len(*cells) {
			if c := (*cells)[id]; c != nil && c.left > 0 {
				c.left--
				c.attempts++
				// inSlow is false here by invariant: every path that
				// sets it (the Contended probe) ends in a flush that
				// clears it again.
				w.l.Acquire(t)
				if c.inSlow {
					w.m.acquireDoneSlow(t, c)
				}
				return
			}
		}
	}
	w.acquireSlow(t)
}

// acquireSlow is the outlined sampled/first-acquire path.
func (w *instLock) acquireSlow(t *core.Thread) {
	c := w.m.acquireStart(t)
	w.l.Acquire(t)
	w.m.acquireDone(t, c)
}

// Release releases the underlying lock, closing any sampled hold
// window. Like Acquire it open-codes the unsampled fast path; when the
// acquire was sampled, the latency record lands after the lock is free,
// so instrumentation never lengthens the critical section.
func (w *instLock) Release(t *core.Thread) {
	if cells := w.m.cells.Load(); cells != nil {
		if id := t.ID(); id < len(*cells) {
			if c := (*cells)[id]; c != nil && !c.sampled {
				w.l.Release(t)
				return
			}
		}
	}
	w.releaseSlow(t)
}

// releaseSlow is the outlined sampled-release (or no-cell) path.
func (w *instLock) releaseSlow(t *core.Thread) {
	c, hold := w.m.releasePre(t)
	w.l.Release(t)
	if c != nil {
		w.m.releasePost(c, hold)
	}
}

// Metrics returns the lock's collector.
func (w *instLock) Metrics() *LockMetrics { return w.m }

// Sync flushes thread t's residue counters.
func (w *instLock) Sync(t *core.Thread) { w.m.Sync(t) }

// Unwrap returns the uninstrumented lock.
func (w *instLock) Unwrap() core.Lock { return w.l }

// tryAcquire is the shared instrumented non-blocking attempt. A failed
// try counts as a contended attempt that aborted — the caller observed
// the lock held and gave up without waiting.
func (w *instLock) tryAcquire(t *core.Thread, try core.TryLocker) bool {
	c := w.m.acquireStart(t)
	if try.TryAcquire(t) {
		w.m.acquireDone(t, c)
		return true
	}
	if !c.inSlow {
		c.contended++
	}
	w.m.abort(t, c)
	return false
}

// acquireFor is the shared instrumented timed acquire; a timeout counts
// as an abort and flushes immediately.
func (w *instLock) acquireFor(t *core.Thread, d time.Duration, timed core.TimedLock) bool {
	c := w.m.acquireStart(t)
	if timed.AcquireFor(t, d) {
		w.m.acquireDone(t, c)
		return true
	}
	w.m.abort(t, c)
	return false
}

// instTryLock adds core.TryLocker.
type instTryLock struct {
	instLock
	try core.TryLocker
}

// TryAcquire attempts the underlying non-blocking acquire.
func (w *instTryLock) TryAcquire(t *core.Thread) bool { return w.tryAcquire(t, w.try) }

// instTimedLock adds core.TimedLock.
type instTimedLock struct {
	instLock
	timed core.TimedLock
}

// AcquireFor runs the underlying timed acquire.
func (w *instTimedLock) AcquireFor(t *core.Thread, d time.Duration) bool {
	return w.acquireFor(t, d, w.timed)
}

// instTimedTryLock adds both capabilities.
type instTimedTryLock struct {
	instLock
	timed core.TimedLock
	try   core.TryLocker
}

// TryAcquire attempts the underlying non-blocking acquire.
func (w *instTimedTryLock) TryAcquire(t *core.Thread) bool { return w.tryAcquire(t, w.try) }

// AcquireFor runs the underlying timed acquire.
func (w *instTimedTryLock) AcquireFor(t *core.Thread, d time.Duration) bool {
	return w.acquireFor(t, d, w.timed)
}

// Interface checks: every variant is an InstrumentedLock, and the
// capability variants surface the matching core interfaces.
var (
	_ InstrumentedLock = (*instLock)(nil)
	_ InstrumentedLock = (*instTryLock)(nil)
	_ InstrumentedLock = (*instTimedLock)(nil)
	_ InstrumentedLock = (*instTimedTryLock)(nil)
	_ core.TryLocker   = (*instTryLock)(nil)
	_ core.TimedLock   = (*instTimedLock)(nil)
	_ core.TryLocker   = (*instTimedTryLock)(nil)
	_ core.TimedLock   = (*instTimedTryLock)(nil)
)
