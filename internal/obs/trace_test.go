package obs

import (
	"bytes"
	"runtime/trace"
	"testing"

	"repro/internal/core"
)

// TestFlightRecorderRegions captures a runtime trace around sampled
// acquires and checks the lock's wait/hold region names land in it —
// the strings a `go tool trace` view groups lock phases under.
func TestFlightRecorderRegions(t *testing.T) {
	if trace.IsEnabled() {
		t.Skip("a trace is already running")
	}
	var buf bytes.Buffer
	if err := trace.Start(&buf); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(1, 1)
	l := NewRegistry().Instrument(core.NewTATAS(), "flight", WithSampleEvery(1))
	th := rt.RegisterThread(0)
	for i := 0; i < 5; i++ {
		l.Acquire(th)
		l.Release(th)
	}
	trace.Stop()
	out := buf.Bytes()
	for _, want := range []string{"lock:flight:wait", "lock:flight:hold"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("trace capture missing region name %q", want)
		}
	}
}
