// The parallel-simulation speedup guard: proof that the fan-out layers
// actually buy wall-clock time on a multi-core host, not just pass
// byte-identity checks.
//
// Like internal/obs's TestOverheadGuard, it is a timing assertion and
// therefore gated behind an environment variable — run it alone on an
// otherwise idle machine:
//
//	HBO_BENCH_SPEEDUP=1 go test -run TestParallelSpeedupGuard -v .
//
// On hosts with fewer than 4 CPUs the test SKIPS — it never fakes a
// pass. BENCH_pdes.json records why: a 1-CPU container reports parity
// for every width, which is a property of the host, not the engine.
package hbo_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
)

// speedupOptions is the guard's workload shape: the full experiment
// suite in quick mode, heavy enough that pool scheduling overhead is
// noise but light enough for a CI timing step.
func speedupOptions() experiments.Options {
	return experiments.Options{Seeds: 1, Scale: 800, Quick: true}
}

// runSuite runs experiments.All() once at the given fan-out widths and
// returns the wall-clock time.
func runSuite(t *testing.T, parallel, simWorkers int) time.Duration {
	t.Helper()
	o := speedupOptions()
	o.Parallel = parallel
	o.SimWorkers = simWorkers
	start := time.Now()
	for _, e := range experiments.All() {
		if tables := e.Run(o); len(tables) == 0 {
			t.Fatalf("experiment %s produced no output", e.ID)
		}
	}
	return time.Since(start)
}

// minDuration returns the fastest of `rounds` suite runs — minimum,
// because a speedup measurement cares about the undisturbed cost and
// every disturbance is additive noise.
func minDuration(t *testing.T, rounds, parallel, simWorkers int) time.Duration {
	t.Helper()
	var best time.Duration
	for i := 0; i < rounds; i++ {
		d := runSuite(t, parallel, simWorkers)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// TestParallelSpeedupGuard fails when running the whole experiment
// suite with both fan-out layers open (-parallel and -sim-workers at 8,
// product capped at GOMAXPROCS) is not substantially faster than the
// fully sequential run. The bar scales with the host: >= 4x on 8+
// cores (the ISSUE acceptance number), >= cores/2 on 4-7 cores, and a
// skip — never a fake pass — below 4.
func TestParallelSpeedupGuard(t *testing.T) {
	if os.Getenv("HBO_BENCH_SPEEDUP") != "1" {
		t.Skip("set HBO_BENCH_SPEEDUP=1 to run the speedup guard")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		t.Skipf("host has %d CPUs; the speedup guard needs >= 4 (parity on a small host is the host's fault, not the engine's)", cpus)
	}
	want := 4.0
	if cpus < 8 {
		want = float64(cpus) / 2
	}

	const rounds = 3
	// One warmup of each side before measuring.
	runSuite(t, 1, 1)
	runSuite(t, 8, 8)
	seq := minDuration(t, rounds, 1, 1)
	par := minDuration(t, rounds, 8, 8)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential=%v parallel=%v speedup=%.2fx (want >= %.1fx on %d CPUs)", seq, par, speedup, want, cpus)
	if speedup < want {
		t.Fatalf("parallel suite %.2fx speedup below the %.1fx bar for a %d-CPU host (seq=%v par=%v)",
			speedup, want, cpus, seq, par)
	}
}
