// Quickstart: protect a shared counter with the paper's HBO_GT_SD lock.
//
// Run with:
//
//	go run repro/examples/quickstart
//
// Workers are spread over two logical NUCA nodes; each registers a
// Thread carrying its node id (the library's stand-in for the paper's
// per-thread node_id register) and hammers a shared counter.
package main

import (
	"fmt"
	"sync"
	"time"

	hbo "repro"
)

func main() {
	const (
		nodes   = 2
		workers = 8
		iters   = 200_000
	)

	rt := hbo.NewRuntime(nodes, workers)
	lock := hbo.NewLock(hbo.HBOGTSD, rt)

	counter := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			t := rt.RegisterThread(node)
			for i := 0; i < iters; i++ {
				lock.Acquire(t)
				counter++
				lock.Release(t)
			}
		}(w % nodes)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("lock:     %s\n", lock.Name())
	fmt.Printf("workers:  %d over %d logical nodes\n", workers, nodes)
	fmt.Printf("counter:  %d (want %d)\n", counter, workers*iters)
	fmt.Printf("elapsed:  %v (%.0f ns/acquire-release)\n",
		elapsed, float64(elapsed.Nanoseconds())/float64(workers*iters))
	if counter != workers*iters {
		panic("mutual exclusion violated")
	}
}
