// Phases: a barrier-synchronized, phase-structured computation — the
// shape of a SPLASH-2 program — on the simulated NUCA machine, showing
// how lock choice changes phase times and how the tree barrier keeps
// the barrier itself off the interconnect.
//
// Run with:
//
//	go run repro/examples/phases
//
// Each phase does parallel work with occasional critical sections, then
// everyone meets at a barrier (the paper's section 6 setting: unfair
// locks make threads arrive unevenly, so the phase ends late).
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
	"repro/internal/simsync"
)

const (
	threads = 16
	phases  = 4
	updates = 40 // critical-section entries per thread per phase
)

func run(lockName string) (total sim.Time, global uint64) {
	cfg := machine.WildFire()
	cfg.Seed = 77
	m := machine.New(cfg)

	cpus := make([]int, threads)
	next := make([]int, cfg.Nodes)
	for i := range cpus {
		n := i % cfg.Nodes
		cpus[i] = n*cfg.CPUsPerNode + next[n]
		next[n]++
	}

	lock := simlock.New(lockName, m, 0, cpus, simlock.DefaultTuning())
	barrier := simsync.NewTreeBarrier(m, cpus)
	shared := m.Alloc(0, 2)

	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(cpus[tid], func(p *machine.Proc) {
			rng := sim.NewRNG(uint64(tid) + 1)
			for ph := 0; ph < phases; ph++ {
				for u := 0; u < updates; u++ {
					p.Work(rng.Timen(3000) + 500) // parallel compute
					lock.Acquire(p, tid)
					p.Store(shared, p.Load(shared)+1)
					p.Store(shared+1, p.Load(shared+1)+1)
					lock.Release(p, tid)
				}
				barrier.Wait(p, tid)
			}
		})
	}
	m.Run()
	return m.Now(), m.Stats().Global
}

func main() {
	fmt.Printf("%d threads, %d phases, %d lock entries each, tree barrier\n\n",
		threads, phases, updates)
	fmt.Printf("%-10s %12s %10s\n", "lock", "total", "global txns")
	for _, name := range []string{"TATAS", "TATAS_EXP", "MCS", "CLH", "HBO_GT_SD", "COHORT"} {
		total, global := run(name)
		fmt.Printf("%-10s %12v %10d\n", name, total, global)
	}
	fmt.Println("\nUnfair locks delay the last arrival at each barrier; the")
	fmt.Println("phase cannot end before it.")
}
