// Taskqueue: a Raytrace-style contended task queue, the workload where
// the paper's NUCA-aware locks shine (its Table 4).
//
// Run with:
//
//	go run repro/examples/taskqueue
//
// A single queue feeds every worker; each pop also bumps a global
// statistics counter under a second lock, mirroring how SPLASH-2
// Raytrace uses its locks. The example compares throughput across lock
// algorithms and sync.Mutex on the same workload.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	hbo "repro"
)

const (
	nodes = 2
	tasks = 150_000
)

// queue is a tiny LIFO guarded entirely by the caller's lock.
type queue struct {
	items []int
}

func (q *queue) pop() (int, bool) {
	n := len(q.items)
	if n == 0 {
		return 0, false
	}
	v := q.items[n-1]
	q.items = q.items[:n-1]
	return v, true
}

// run drains the queue with the given locks and returns the elapsed time.
func run(workers int, qlock, slock sync.Locker, mk func(node int) (sync.Locker, sync.Locker)) time.Duration {
	q := &queue{items: make([]int, tasks)}
	for i := range q.items {
		q.items[i] = i
	}
	stats := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			ql, sl := qlock, slock
			if mk != nil {
				ql, sl = mk(node)
			}
			sum := 0
			for {
				ql.Lock()
				v, ok := q.pop()
				ql.Unlock()
				if !ok {
					break
				}
				// Simulated "render one ray": a little private work.
				sum += v * v % 7
				sl.Lock()
				stats++
				sl.Unlock()
			}
			_ = sum
		}(w % nodes)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if stats != tasks {
		panic(fmt.Sprintf("lost tasks: %d != %d", stats, tasks))
	}
	return elapsed
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	fmt.Printf("draining %d tasks with %d workers\n\n", tasks, workers)

	// sync.Mutex baseline.
	var mq, ms sync.Mutex
	base := run(workers, &mq, &ms, nil)
	fmt.Printf("%-12s %8v  1.00x\n", "sync.Mutex", base.Round(time.Millisecond))

	for _, a := range []hbo.Algorithm{hbo.TATASExp, hbo.MCS, hbo.HBO, hbo.HBOGTSD} {
		rt := hbo.NewRuntime(nodes, workers)
		ql := hbo.NewLock(a, rt)
		sl := hbo.NewLock(a, rt)
		elapsed := run(workers, nil, nil, func(node int) (sync.Locker, sync.Locker) {
			t := rt.RegisterThread(node) // safe for concurrent registration
			return hbo.Locker{L: ql, T: t}, hbo.Locker{L: sl, T: t}
		})
		fmt.Printf("%-12s %8v  %.2fx\n", a, elapsed.Round(time.Millisecond),
			float64(base)/float64(elapsed))
	}
	fmt.Println("\n(>1.00x = faster than sync.Mutex on this machine)")
}
