// Simulate: build a custom NUCA machine, run a contended workload on it,
// and inspect the coherence traffic — the reproduction stack as a
// library.
//
// Run with:
//
//	go run repro/examples/simulate
//
// The example builds a 4-node machine (a hierarchical NUCA like the
// CMP-based servers the paper's section 2 predicts), runs the same
// critical-section loop under TATAS and HBO_GT_SD, and prints time,
// node-handoff ratio, and local/global transaction counts.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/simlock"
)

func main() {
	const (
		threads = 16
		iters   = 300
	)

	fmt.Println("4-node NUCA, 4 CPUs/node, 16 threads hammering one lock")
	fmt.Printf("%-10s %10s %10s %8s %8s\n", "lock", "time", "per-iter", "handoff", "global")

	for _, name := range []string{"TATAS", "TATAS_EXP", "MCS", "HBO", "HBO_GT_SD"} {
		cfg := machine.WildFire()
		cfg.Nodes = 4
		cfg.CPUsPerNode = 4
		cfg.Seed = 42
		m := machine.New(cfg)

		cpus := make([]int, threads)
		for i := range cpus {
			cpus[i] = i
		}
		lock := simlock.New(name, m, 0, cpus, simlock.DefaultTuning())
		shared := m.Alloc(0, 4) // data guarded by the lock

		lastNode, handoffs, switches := -1, 0, 0
		for tid := 0; tid < threads; tid++ {
			tid := tid
			m.Spawn(cpus[tid], func(p *machine.Proc) {
				rng := sim.NewRNG(uint64(tid) + 1)
				for i := 0; i < iters; i++ {
					lock.Acquire(p, tid)
					if lastNode >= 0 {
						handoffs++
						if lastNode != p.Node() {
							switches++
						}
					}
					lastNode = p.Node()
					for w := 0; w < 4; w++ {
						a := shared + machine.Addr(w)
						p.Store(a, p.Load(a)+1)
					}
					lock.Release(p, tid)
					p.Work(2000 + rng.Timen(2000))
				}
			})
		}
		m.Run()

		total := m.Now()
		fmt.Printf("%-10s %10v %10v %8.2f %8d\n",
			name, total, total/sim.Time(threads*iters),
			float64(switches)/float64(handoffs), m.Stats().Global)
	}
	fmt.Println("\nhandoff = fraction of acquisitions that crossed nodes")
}
