// Benchmarks regenerating each table and figure of the paper (driving
// the simulation stack in quick mode), plus native-lock microbenchmarks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// For full-resolution experiment output use cmd/hbobench instead; these
// benches exist so `go test -bench` exercises every experiment path and
// reports its cost.
package hbo_test

import (
	"fmt"
	"sync"
	"testing"

	hbo "repro"
	"repro/internal/experiments"
	"repro/internal/par"
)

// benchOptions keeps each benchmark iteration affordable.
func benchOptions() experiments.Options {
	return experiments.Options{Seeds: 1, Scale: 400, Quick: true}
}

// runExperiment is the shared driver for the per-table/figure benches.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(o)
		if len(tables) == 0 || tables[0].NumRows() == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkTable1Uncontested(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkFig3Traditional(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig5NewMicro(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkTable2Traffic(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkTable3LockStats(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkTable4Raytrace(b *testing.B)        { runExperiment(b, "table4") }
func BenchmarkTable5Apps(b *testing.B)            { runExperiment(b, "table5") }
func BenchmarkTable6AppTraffic(b *testing.B)      { runExperiment(b, "table6") }
func BenchmarkFig6NormalizedSpeedup(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7RaytraceSpeedup(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8Fairness(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig9Sensitivity(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10Sensitivity(b *testing.B)      { runExperiment(b, "fig10") }

// BenchmarkNativeUncontested measures a single goroutine's
// acquire-release pair for every native lock (the real-hardware analog
// of Table 1's "Same Processor" column).
func BenchmarkNativeUncontested(b *testing.B) {
	for _, a := range hbo.AlgorithmNames() {
		a := a
		b.Run(string(a), func(b *testing.B) {
			rt := hbo.NewRuntime(2, 1)
			l := hbo.NewLock(a, rt)
			t := rt.RegisterThread(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Acquire(t)
				l.Release(t)
			}
		})
	}
}

// BenchmarkNativeContended measures throughput with every processor
// contending (the real-hardware analog of the traditional
// microbenchmark).
func BenchmarkNativeContended(b *testing.B) {
	for _, a := range hbo.AlgorithmNames() {
		a := a
		b.Run(string(a), func(b *testing.B) {
			rt := hbo.NewRuntime(2, 64)
			l := hbo.NewLock(a, rt)
			var mu sync.Mutex
			var registered []*hbo.Thread
			nextNode := 0
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				t := rt.RegisterThread(nextNode % 2)
				nextNode++
				registered = append(registered, t)
				mu.Unlock()
				for pb.Next() {
					l.Acquire(t)
					l.Release(t)
				}
			})
		})
	}
}

func BenchmarkExt1AllAlgorithms(b *testing.B)   { runExperiment(b, "ext1") }
func BenchmarkExt2HierarchicalCMP(b *testing.B) { runExperiment(b, "ext2") }

// runExperimentParallel benchmarks one experiment at a fixed
// worker-pool width (results are byte-identical across widths; only the
// wall clock should move).
func runExperimentParallel(b *testing.B, id string, workers int) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	o.Parallel = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(o)
		if len(tables) == 0 || tables[0].NumRows() == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

// parWidths are the worker-pool widths the fan-out benches compare:
// sequential, the host's GOMAXPROCS, and a fixed 8 so results are
// comparable across machines.
func parWidths() []int {
	ws := []int{1, par.DefaultWorkers(), 8}
	seen := map[int]bool{}
	out := ws[:0]
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkFig6Parallel sweeps the Figure 6 speedup experiment (the
// apps x locks x seeds grid) across worker-pool widths.
func BenchmarkFig6Parallel(b *testing.B) {
	for _, w := range parWidths() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runExperimentParallel(b, "fig6", w)
		})
	}
}

// BenchmarkTable4Parallel sweeps the Table 4 multi-seed Raytrace runs
// across worker-pool widths.
func BenchmarkTable4Parallel(b *testing.B) {
	for _, w := range parWidths() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runExperimentParallel(b, "table4", w)
		})
	}
}

// BenchmarkAllExperiments runs the entire suite — the workload behind
// `hbobench -experiment all` — sequentially and with the worker pool.
// The parallel/sequential ratio is the headline fan-out speedup (on a
// multi-core host; a 1-CPU machine reports parity).
func BenchmarkAllExperiments(b *testing.B) {
	for _, w := range parWidths() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := benchOptions()
			o.Parallel = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, e := range experiments.All() {
					if tables := e.Run(o); len(tables) == 0 {
						b.Fatalf("experiment %s produced no output", e.ID)
					}
				}
			}
		})
	}
}

// BenchmarkAllExperimentsSimWorkers sweeps the inner PDES width instead
// of (not on top of) the cell pool: -parallel is pinned to 1 so the
// whole suite's wall clock isolates how much the partitioned
// simulations (clu1) gain from running one machine across w cores.
// Output is byte-identical at every width; only time/op should move.
func BenchmarkAllExperimentsSimWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("simworkers=%d", w), func(b *testing.B) {
			o := benchOptions()
			o.Parallel = 1
			o.SimWorkers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, e := range experiments.All() {
					if tables := e.Run(o); len(tables) == 0 {
						b.Fatalf("experiment %s produced no output", e.ID)
					}
				}
			}
		})
	}
}
