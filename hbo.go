package hbo

import (
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/lockspec"
	"repro/internal/obs"
)

// Algorithm selects a lock algorithm.
type Algorithm string

// The eight algorithms of the paper, in its table order.
const (
	TATAS    Algorithm = "TATAS"
	TATASExp Algorithm = "TATAS_EXP"
	MCS      Algorithm = "MCS"
	CLH      Algorithm = "CLH"
	RH       Algorithm = "RH"
	HBO      Algorithm = "HBO"
	HBOGT    Algorithm = "HBO_GT"
	HBOGTSD  Algorithm = "HBO_GT_SD"
)

// Extensions beyond the paper: classic baselines from its related work
// and the follow-on designs it inspired.
const (
	// Ticket is the FIFO ticket lock with proportional backoff.
	Ticket Algorithm = "TICKET"
	// Anderson is Anderson's array-based queue lock.
	Anderson Algorithm = "ANDERSON"
	// Reactive switches between TATAS_EXP and MCS by contention
	// (Lim & Agarwal's approach, the paper's section 3 alternative).
	Reactive Algorithm = "REACTIVE"
	// HBOHier is the hierarchical HBO the paper sketches in §4.1;
	// pair it with NewRuntimeHierarchical.
	HBOHier Algorithm = "HBO_HIER"
	// Cohort is a ticket-ticket cohort lock (Dice-Marathe-Shavit), the
	// NUMA-lock lineage HBO helped start.
	Cohort Algorithm = "COHORT"
	// CNA is the compact NUMA-aware queue lock (Dice & Kogan, EuroSys
	// 2019): an MCS queue whose releaser passes within its node first,
	// parking remote waiters on a secondary queue.
	CNA Algorithm = "CNA"
	// HMCST is HMCS-T (Chabbi et al.), a two-level hierarchical MCS
	// queue lock with timed-out (abortable) acquires.
	HMCST Algorithm = "HMCS_T"
)

// AlgorithmNames lists the paper's eight algorithms in its table order.
func AlgorithmNames() []Algorithm {
	var out []Algorithm
	for _, n := range core.Names() {
		out = append(out, Algorithm(n))
	}
	return out
}

// ExtendedAlgorithmNames lists the additional algorithms this library
// implements beyond the paper.
func ExtendedAlgorithmNames() []Algorithm {
	var out []Algorithm
	for _, n := range core.ExtendedNames() {
		out = append(out, Algorithm(n))
	}
	return out
}

// AllAlgorithmNames lists the paper's eight plus the extensions.
func AllAlgorithmNames() []Algorithm {
	return append(AlgorithmNames(), ExtendedAlgorithmNames()...)
}

// NUCAAware reports whether the algorithm exploits node locality,
// derived from the lockspec registry's NUCA flag.
func (a Algorithm) NUCAAware() bool { return lockspec.NUCAAware(string(a)) }

// Runtime describes the logical NUCA topology and registers worker
// threads. See core.Runtime.
type Runtime = core.Runtime

// Thread is a registered worker handle carrying its logical node id.
type Thread = core.Thread

// Lock is a mutual-exclusion lock operated on behalf of a registered
// Thread.
type Lock = core.Lock

// Locker adapts a Lock and a Thread to sync.Locker.
type Locker = core.Locker

// Tuning collects backoff constants; see DefaultTuning.
type Tuning = core.Tuning

// NewRuntime creates a runtime with the given number of logical NUCA
// nodes, supporting up to maxThreads registered worker threads.
func NewRuntime(nodes, maxThreads int) *Runtime {
	return core.NewRuntime(nodes, maxThreads)
}

// NewRuntimeHierarchical creates a runtime whose nodes form clusters of
// clusterSize — a hierarchical NUCA, e.g. a NUMA machine built from
// chip multiprocessors. The HBOHier algorithm exploits the extra level.
func NewRuntimeHierarchical(nodes, clusterSize, maxThreads int) *Runtime {
	return core.NewRuntimeHierarchical(nodes, clusterSize, maxThreads)
}

// DefaultTuning returns backoff constants that behave reasonably on
// commodity hardware. Like the paper says of its own constants, they
// are best re-tuned per deployment.
func DefaultTuning() Tuning { return core.DefaultTuning() }

// NewLock builds the given algorithm on runtime rt with default tuning.
// It panics on an unknown algorithm (configuration is programmer input).
func NewLock(a Algorithm, rt *Runtime) Lock {
	return core.New(string(a), rt, core.DefaultTuning())
}

// NewLockTuned builds the given algorithm with explicit tuning.
func NewLockTuned(a Algorithm, rt *Runtime, tun Tuning) Lock {
	return core.New(string(a), rt, tun)
}

// TryLocker is implemented by the algorithms that support non-blocking
// acquisition attempts (TATAS, TATASExp, MCS, RH, HBO, HBOGT, HBOGTSD,
// HBOHier). Use a type assertion:
//
//	if tl, ok := lock.(hbo.TryLocker); ok && tl.TryAcquire(t) { ... }
type TryLocker = core.TryLocker

// AcquireTimeout repeatedly attempts TryAcquire with exponential backoff
// until it succeeds or d elapses, reporting success.
func AcquireTimeout(l TryLocker, t *Thread, d time.Duration) bool {
	return core.AcquireTimeout(l, t, d, core.DefaultTuning())
}

// AcquireWithin acquires l for t within d using the strongest bounded
// path the algorithm offers: a native timed acquire (core.TimedLock),
// a polled try-acquire with exponential backoff, or — for queue locks
// with no abortable path — an unbounded blocking acquire that always
// reports true. d <= 0 always blocks. This is the dispatch hbolockd
// uses to arbitrate lease shards with any configured algorithm.
func AcquireWithin(l Lock, t *Thread, d time.Duration) bool {
	return core.AcquireWithin(l, t, d, core.DefaultTuning())
}

// Instrument wraps l with live runtime metrics under name in the
// process-wide registry: acquire/contention/abort counts, sampled
// wait/hold latency histograms and node-handoff locality, recorded
// into node-sharded counters so observing a lock adds no cross-node
// coherence traffic (see internal/obs). The wrapper preserves l's
// TryLocker/TimedLock capabilities. Serve the metrics with
// MetricsHandler.
func Instrument(l Lock, name string) Lock {
	return obs.Instrumented(l, name)
}

// MetricsHandler exposes every Instrument-ed lock's live metrics:
// /metrics (Prometheus text format), /debug/vars (expvar JSON),
// /snapshot (obs-snapshot/v1) and /report (hbo-run-report/v1).
// Typical use:
//
//	go http.ListenAndServe("localhost:9141", hbo.MetricsHandler())
//
// cmd/locktop renders the same endpoint as a live terminal view.
func MetricsHandler() http.Handler {
	return obs.Default.Handler()
}
