package lockclient

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/lockserv"
)

// serveOn runs a fresh service core on an existing listener, returning
// the stopper.
func serveOn(t *testing.T, ln net.Listener, svc *lockserv.Service) func() {
	t.Helper()
	srv := &http.Server{Handler: lockserv.Handler(svc)}
	go srv.Serve(ln)
	return func() { srv.Close() }
}

func newService(t *testing.T) *lockserv.Service {
	t.Helper()
	svc, err := lockserv.New(lockserv.Config{
		Tenants:    []string{"t0"},
		Shards:     2,
		DefaultTTL: time.Second,
		MaxTTL:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestClientRidesThroughRestart: the daemon goes away mid-session —
// connections refused — and comes back on the same address. Acquire
// and Renew retry through the outage instead of surfacing a transport
// error, exactly as they would across a crash/restart cycle.
func TestClientRidesThroughRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	svc := newService(t)
	stop := serveOn(t, ln, svc)

	c := New(addr, WithOwner("rider"),
		WithBackoff(Backoff{Base: time.Millisecond, Cap: 20 * time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	l, err := c.Acquire(ctx, "t0", "k", 8*time.Second)
	if err != nil {
		t.Fatalf("acquire before restart: %v", err)
	}

	// Take the daemon down. Every request now gets connection refused.
	stop()
	if _, err := c.AcquireOnce(ctx, "t0", "other", time.Second); err == nil {
		t.Fatal("AcquireOnce succeeded against a dead daemon")
	} else if !retryableTransport(err) {
		t.Fatalf("dead-daemon error %v not classified retryable", err)
	}

	// Bring it back on the same address after a beat. The service core
	// is the same instance — standing in for a store-recovered daemon,
	// which restores the same leases and counters.
	restarted := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("rebinding %s: %v", addr, err)
			close(restarted)
			return
		}
		t.Cleanup(serveOn(t, ln2, svc))
		close(restarted)
	}()

	// Renew of the pre-outage lease rides through the refused
	// connections and lands once the daemon is back.
	if err := c.Renew(ctx, l, 8*time.Second); err != nil {
		t.Fatalf("renew across restart: %v", err)
	}
	<-restarted
	// The token is the original one: the restart did not remint it.
	got, held, err := c.Inspect(ctx, "t0", "k")
	if err != nil || !held || got.Token != l.Token {
		t.Fatalf("inspect after restart = %+v held=%v err=%v, want token %d", got, held, err, l.Token)
	}
	if err := c.Release(ctx, l); err != nil {
		t.Fatalf("release after restart: %v", err)
	}
}

// TestClientCancelMidOutage: with the daemon down and the client deep
// in its backoff sleep, canceling the context returns promptly — the
// retry loops select on ctx.Done() in every sleep, so callers are
// never pinned for a restart they no longer care about.
func TestClientCancelMidOutage(t *testing.T) {
	// A listener that is immediately closed: the port refuses
	// connections for the rest of the test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// A huge backoff cap guarantees the cancel lands mid-sleep.
	c := New(addr, WithBackoff(Backoff{Base: 30 * time.Second, Cap: time.Minute}))
	ctx, cancel := context.WithCancel(context.Background())
	lease := &Lease{Tenant: "t0", Key: "k", Owner: "lockclient", Token: 1}

	type result struct {
		op  string
		err error
	}
	results := make(chan result, 3)
	go func() {
		_, err := c.Acquire(ctx, "t0", "k", time.Second)
		results <- result{"acquire", err}
	}()
	go func() { results <- result{"renew", c.Renew(ctx, lease, time.Second)} }()
	go func() { results <- result{"release", c.Release(ctx, lease)} }()

	time.Sleep(100 * time.Millisecond) // let all three enter their backoff sleep
	start := time.Now()
	cancel()
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if !errors.Is(r.err, context.Canceled) {
				t.Fatalf("%s after cancel = %v, want context.Canceled", r.op, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("retry loop still sleeping %v after cancel", time.Since(start))
		}
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep ignored ctx", waited)
	}
}
