// Package lockclient is the Go client for hbolockd, the lock/lease
// service built on this repository's NUMA-aware native lock stack.
// It implements the service tier's half of the paper's backoff policy:
// retries use capped exponential backoff with deterministic jitter,
// and every explicit Retry-After hint from the server (backpressure,
// rate limiting, injected NACKs) overrides the schedule — the client
// backs off exactly as far as the contended resource asks it to,
// rather than hammering a saturated shard.
//
// Usage:
//
//	c := lockclient.New("localhost:9151", lockclient.WithOwner("worker-7"))
//	lease, err := c.Acquire(ctx, "tenant-a", "jobs/1234", 5*time.Second)
//	if err == nil {
//	        defer c.Release(context.Background(), lease)
//	        // ... fenced work: pass lease.Token downstream ...
//	}
//
// Acquire blocks (honouring ctx) until the lease is granted, retrying
// conflicts and backpressure; AcquireOnce makes a single attempt.
package lockclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/lockserv"
)

// Lease is a granted lease: present its fencing Token to anything the
// critical section touches, and hand the whole value back to Renew or
// Release.
type Lease struct {
	Tenant string
	Key    string
	Owner  string
	Token  uint64
	Expiry time.Time
	// Node is the server's node-affinity hint: the NUCA home node of
	// the key's shard. Locality is the live handoff-locality of that
	// shard's arbitrating lock (1 = handoffs never leave the node).
	Node     int
	Locality float64
}

// ErrStale is returned when the presented token no longer names the
// live lease — it expired, was released, or the key was re-granted.
// The token is dead forever; re-Acquire to continue.
var ErrStale = errors.New("lockclient: stale lease")

// ConflictError reports a key held by another owner, with the
// server's hint of when the lease falls due.
type ConflictError struct {
	Holder     string
	RetryAfter time.Duration
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("lockclient: held by %q (retry after %v)", e.Holder, e.RetryAfter)
}

// Backoff is the capped exponential retry schedule. Jitter is
// deterministic (a splitmix64 stream seeded per client), so a driver
// run with a fixed seed replays the same schedule.
type Backoff struct {
	Base   time.Duration // first delay (default 2ms)
	Factor float64       // growth per retry (default 2)
	Cap    time.Duration // ceiling (default 250ms)
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 2 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Cap <= 0 {
		b.Cap = 250 * time.Millisecond
	}
	return b
}

// delay computes the nth (0-based) backoff with jitter in [50%, 100%].
func (c *Client) delay(n int) time.Duration {
	d := float64(c.backoff.Base)
	for i := 0; i < n; i++ {
		d *= c.backoff.Factor
		if d >= float64(c.backoff.Cap) {
			d = float64(c.backoff.Cap)
			break
		}
	}
	// xorshift-mixed counter: cheap deterministic jitter.
	x := c.jitter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	frac := 0.5 + 0.5*float64(x>>11)/float64(1<<53)
	return time.Duration(d * frac)
}

// Option configures a Client.
type Option func(*Client)

// WithOwner sets the owner identity presented on every request
// (default "lockclient").
func WithOwner(owner string) Option { return func(c *Client) { c.owner = owner } }

// WithBackoff replaces the retry schedule.
func WithBackoff(b Backoff) Option { return func(c *Client) { c.backoff = b.withDefaults() } }

// WithHTTPClient replaces the transport (tests use a local server's
// client; production might tune timeouts).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithJitterSeed seeds the deterministic jitter stream.
func WithJitterSeed(seed uint64) Option { return func(c *Client) { c.jitter.Store(seed) } }

// Client talks to one hbolockd. Safe for concurrent use.
type Client struct {
	base    string
	owner   string
	http    *http.Client
	backoff Backoff
	jitter  atomic.Uint64
}

// New builds a client for addr (host:port or URL).
func New(addr string, opts ...Option) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	c := &Client{
		base:    strings.TrimRight(addr, "/"),
		owner:   "lockclient",
		http:    &http.Client{Timeout: 10 * time.Second},
		backoff: Backoff{}.withDefaults(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Owner returns the client's owner identity.
func (c *Client) Owner() string { return c.owner }

// post runs one wire operation and decodes the schema-checked reply.
func (c *Client) post(ctx context.Context, path string, reqBody lockserv.OpRequest) (lockserv.OpResponse, error) {
	var out lockserv.OpResponse
	b, err := json.Marshal(reqBody)
	if err != nil {
		return out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(b))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("lockclient: decoding %s reply: %w", path, err)
	}
	if out.Schema != lockserv.WireSchema {
		return out, fmt.Errorf("lockclient: unexpected wire schema %q (want %s)", out.Schema, lockserv.WireSchema)
	}
	if out.Outcome == "error" {
		return out, fmt.Errorf("lockclient: server rejected %s: %s", path, out.Error)
	}
	return out, nil
}

// retryAfter extracts the server's backoff hint, if any.
func retryAfter(r lockserv.OpResponse) (time.Duration, bool) {
	if r.RetryAfterMS > 0 {
		return time.Duration(r.RetryAfterMS) * time.Millisecond, true
	}
	return 0, false
}

// sleep waits for d or ctx, whichever first. Every retry loop backs
// off through here, so a caller canceling its context abandons the
// session promptly even mid-sleep — during a long daemon restart the
// server's Retry-After hints can reach seconds, and a sleep that
// ignored cancellation would pin the caller for all of it.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableTransport reports whether a request failed in a way that a
// daemon restart explains: connection refused or reset (the process
// is down or came down mid-exchange), a dropped connection mid-body,
// or a dial timeout. Such failures are treated like a NACK with no
// hint — retry on the backoff schedule — so sessions ride through a
// crash/restart cycle transparently instead of surfacing a transport
// error to the caller. Context cancellation is never retryable.
func retryableTransport(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	// A name that does not resolve is a configuration error, not a
	// restart in progress — do not spin on it.
	var de *net.DNSError
	if errors.As(err, &de) {
		return false
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// leaseOf builds the client-side lease from a grant response.
func (c *Client) leaseOf(tenant, key string, r lockserv.OpResponse) *Lease {
	return &Lease{
		Tenant:   tenant,
		Key:      key,
		Owner:    c.owner,
		Token:    r.Token,
		Expiry:   time.Unix(0, r.ExpiryUnixNS),
		Node:     r.Node,
		Locality: r.Locality,
	}
}

// AcquireOnce makes a single acquire attempt: a *ConflictError when
// the key is held, a *RetryError on backpressure.
func (c *Client) AcquireOnce(ctx context.Context, tenant, key string, ttl time.Duration) (*Lease, error) {
	r, err := c.post(ctx, "/v1/acquire", lockserv.OpRequest{
		Tenant: tenant, Key: key, Owner: c.owner, TTLMS: int64(ttl / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	switch r.Outcome {
	case lockserv.WireGranted, lockserv.WireRenewed:
		return c.leaseOf(tenant, key, r), nil
	case lockserv.WireConflict:
		ra, _ := retryAfter(r)
		return nil, &ConflictError{Holder: r.Holder, RetryAfter: ra}
	default:
		ra, _ := retryAfter(r)
		return nil, &RetryError{Outcome: r.Outcome, RetryAfter: ra}
	}
}

// RetryError is transient backpressure (throttled, busy, draining, or
// an injected NACK) carrying the server's Retry-After hint.
type RetryError struct {
	Outcome    string
	RetryAfter time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("lockclient: %s (retry after %v)", e.Outcome, e.RetryAfter)
}

// Acquire obtains a lease on (tenant, key), retrying conflicts and
// backpressure with capped exponential backoff until ctx ends. Server
// Retry-After hints override the schedule when longer.
func (c *Client) Acquire(ctx context.Context, tenant, key string, ttl time.Duration) (*Lease, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		l, err := c.AcquireOnce(ctx, tenant, key, ttl)
		if err == nil {
			return l, nil
		}
		d := c.delay(attempt)
		var ce *ConflictError
		var re *RetryError
		switch {
		case errors.As(err, &ce):
			if ce.RetryAfter > d {
				d = ce.RetryAfter
			}
		case errors.As(err, &re):
			if re.RetryAfter > d {
				d = re.RetryAfter
			}
		case retryableTransport(err):
			// The daemon is restarting (connection refused) or died
			// mid-exchange; back off and ride it out.
		default:
			return nil, err
		}
		if err := sleep(ctx, d); err != nil {
			return nil, err
		}
	}
}

// Renew extends l by ttl, updating its Token's expiry in place.
// ErrStale means the lease is gone for good.
func (c *Client) Renew(ctx context.Context, l *Lease, ttl time.Duration) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := c.post(ctx, "/v1/renew", lockserv.OpRequest{
			Tenant: l.Tenant, Key: l.Key, Owner: l.Owner, Token: l.Token,
			TTLMS: int64(ttl / time.Millisecond),
		})
		if err != nil {
			if !retryableTransport(err) {
				return err
			}
			if serr := sleep(ctx, c.delay(attempt)); serr != nil {
				return serr
			}
			continue
		}
		switch r.Outcome {
		case lockserv.WireRenewed:
			l.Expiry = time.Unix(0, r.ExpiryUnixNS)
			return nil
		case lockserv.WireStale:
			return ErrStale
		}
		d := c.delay(attempt)
		if ra, ok := retryAfter(r); ok && ra > d {
			d = ra
		}
		if err := sleep(ctx, d); err != nil {
			return err
		}
	}
}

// Release returns l. ErrStale means it had already expired or been
// re-granted — the caller must treat any fenced work done after the
// expiry as suspect, which is exactly what the token protocol is for.
func (c *Client) Release(ctx context.Context, l *Lease) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := c.post(ctx, "/v1/release", lockserv.OpRequest{
			Tenant: l.Tenant, Key: l.Key, Owner: l.Owner, Token: l.Token,
		})
		if err != nil {
			if !retryableTransport(err) {
				return err
			}
			if serr := sleep(ctx, c.delay(attempt)); serr != nil {
				return serr
			}
			continue
		}
		switch r.Outcome {
		case lockserv.WireReleased:
			return nil
		case lockserv.WireStale:
			return ErrStale
		}
		d := c.delay(attempt)
		if ra, ok := retryAfter(r); ok && ra > d {
			d = ra
		}
		if err := sleep(ctx, d); err != nil {
			return err
		}
	}
}

// Inspect reports the live lease on (tenant, key): holder and token
// when held, ok=false when free.
func (c *Client) Inspect(ctx context.Context, tenant, key string) (*Lease, bool, error) {
	q := url.Values{"tenant": {tenant}, "key": {key}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/inspect?"+q.Encode(), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	var r lockserv.OpResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, false, err
	}
	if r.Schema != lockserv.WireSchema {
		return nil, false, fmt.Errorf("lockclient: unexpected wire schema %q", r.Schema)
	}
	switch r.Outcome {
	case lockserv.WireHeld:
		l := c.leaseOf(tenant, key, r)
		l.Owner = r.Holder
		return l, true, nil
	case lockserv.WireFree:
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("lockclient: inspect: %s", r.Outcome)
}
