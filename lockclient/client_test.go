package lockclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/lockserv"
)

// newTestServer runs a real service core behind httptest and returns a
// client aimed at it.
func newTestServer(t *testing.T, mut func(*lockserv.Config)) (*lockserv.Service, *Client) {
	t.Helper()
	cfg := lockserv.Config{
		Tenants:    []string{"t0"},
		Shards:     2,
		DefaultTTL: time.Second,
		MaxTTL:     10 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := lockserv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(lockserv.Handler(svc))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithOwner("tester"),
		WithBackoff(Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond}),
		WithHTTPClient(srv.Client()))
	return svc, c
}

// TestClientRoundtrip: acquire, renew, release over real HTTP.
func TestClientRoundtrip(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()

	l, err := c.Acquire(ctx, "t0", "jobs/1", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Token != 1 || l.Owner != "tester" || l.Tenant != "t0" || l.Key != "jobs/1" {
		t.Fatalf("lease = %+v", l)
	}
	if l.Expiry.Before(time.Now()) {
		t.Fatalf("expiry in the past: %v", l.Expiry)
	}
	if l.Locality < 0 || l.Locality > 1 {
		t.Fatalf("locality hint = %v", l.Locality)
	}

	old := l.Expiry
	if err := c.Renew(ctx, l, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !l.Expiry.After(old) {
		t.Fatalf("renew did not extend: %v -> %v", old, l.Expiry)
	}

	got, held, err := c.Inspect(ctx, "t0", "jobs/1")
	if err != nil || !held || got.Owner != "tester" || got.Token != 1 {
		t.Fatalf("inspect = %+v held=%v err=%v", got, held, err)
	}

	if err := c.Release(ctx, l); err != nil {
		t.Fatal(err)
	}
	if _, held, _ := c.Inspect(ctx, "t0", "jobs/1"); held {
		t.Fatal("still held after release")
	}
}

// TestClientConflictThenAcquire: AcquireOnce surfaces the holder;
// Acquire retries through the conflict until the lease frees up.
func TestClientConflictThenAcquire(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()
	other := New(c.base, WithOwner("other"), WithHTTPClient(c.http))

	l, err := other.Acquire(ctx, "t0", "k", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.AcquireOnce(ctx, "t0", "k", time.Second)
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Holder != "other" {
		t.Fatalf("AcquireOnce = %v", err)
	}

	// Release concurrently; the blocked Acquire must win soon after.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		other.Release(ctx, l)
	}()
	got, err := c.Acquire(ctx, "t0", "k", time.Second)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.Token <= l.Token {
		t.Fatalf("fencing: new token %d not > %d", got.Token, l.Token)
	}
}

// TestClientStaleAfterExpiry: a lease that times out renews as
// ErrStale, and the stale error is terminal (no retry loop).
func TestClientStaleAfterExpiry(t *testing.T) {
	_, c := newTestServer(t, func(cfg *lockserv.Config) {
		cfg.DefaultTTL = 30 * time.Millisecond
		cfg.MaxTTL = 30 * time.Millisecond
	})
	ctx := context.Background()
	l, err := c.Acquire(ctx, "t0", "k", 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := c.Renew(ctx, l, time.Second); err != ErrStale {
		t.Fatalf("renew after expiry = %v, want ErrStale", err)
	}
	if err := c.Release(ctx, l); err != ErrStale {
		t.Fatalf("release after expiry = %v, want ErrStale", err)
	}
}

// TestClientRetriesNACKs: with the fault layer bouncing requests, the
// retry loop grinds through to a grant; AcquireOnce surfaces the
// bounce as a RetryError carrying the server's hint.
func TestClientRetriesNACKs(t *testing.T) {
	_, c := newTestServer(t, func(cfg *lockserv.Config) {
		cfg.Faults = fault.NewServiceInjector(fault.ServiceConfig{
			Seed: 5,
			NACK: fault.ServiceNACKConfig{Enabled: true, Prob: 0.7, RetryAfter: time.Millisecond},
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sawRetry := false
	for i := 0; i < 50; i++ {
		_, err := c.AcquireOnce(ctx, "t0", "probe", time.Second)
		var re *RetryError
		if errors.As(err, &re) {
			if re.Outcome != lockserv.WireNACK || re.RetryAfter <= 0 {
				t.Fatalf("RetryError = %+v", re)
			}
			sawRetry = true
			break
		}
	}
	if !sawRetry {
		t.Fatal("0.7-probability NACK never observed in 50 attempts")
	}

	l, err := c.Acquire(ctx, "t0", "k", time.Second)
	if err != nil {
		t.Fatalf("Acquire through NACKs: %v", err)
	}
	// Release's own loop retries through the bounces; it lands on
	// released (nil) or, if the short lease lapsed meanwhile, ErrStale.
	if err := c.Release(ctx, l); err != nil && err != ErrStale {
		t.Fatalf("Release through NACKs: %v", err)
	}
}

// TestClientBackoffSchedule: the jittered schedule is deterministic
// for a fixed seed, grows toward the cap, and stays within [50%, 100%]
// of the nominal delay.
func TestClientBackoffSchedule(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		c := New("localhost:0",
			WithBackoff(Backoff{Base: 2 * time.Millisecond, Factor: 2, Cap: 50 * time.Millisecond}),
			WithJitterSeed(seed))
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, c.delay(i))
		}
		return out
	}
	a, b := mk(9), mk(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs for same seed: %v vs %v", i, a[i], b[i])
		}
	}
	nominal := []time.Duration{2, 4, 8, 16, 32, 50, 50, 50}
	for i, d := range a {
		top := nominal[i] * time.Millisecond
		if d > top || d < top/2 {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, top/2, top)
		}
	}
	diff := mk(10)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different jitter seeds produced identical schedules")
	}
}

// TestClientSchemaRejection: a non-lockserv endpoint is rejected by
// the wire-schema check, not silently misparsed.
func TestClientSchemaRejection(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	c := New(srv.URL, WithHTTPClient(srv.Client()))
	if _, err := c.AcquireOnce(context.Background(), "t0", "k", time.Second); err == nil {
		t.Fatal("garbage endpoint accepted")
	}
}
