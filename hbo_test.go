package hbo_test

import (
	"sync"
	"testing"

	hbo "repro"
)

func TestAlgorithmNames(t *testing.T) {
	names := hbo.AlgorithmNames()
	if len(names) != 8 {
		t.Fatalf("got %d algorithms, want 8", len(names))
	}
	if names[0] != hbo.TATAS || names[7] != hbo.HBOGTSD {
		t.Fatalf("order wrong: %v", names)
	}
}

func TestNUCAAware(t *testing.T) {
	if hbo.TATAS.NUCAAware() || hbo.MCS.NUCAAware() {
		t.Error("TATAS/MCS are not NUCA-aware")
	}
	if !hbo.HBO.NUCAAware() || !hbo.RH.NUCAAware() {
		t.Error("HBO/RH are NUCA-aware")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	for _, a := range hbo.AlgorithmNames() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			rt := hbo.NewRuntime(2, 8)
			l := hbo.NewLock(a, rt)
			if l.Name() != string(a) {
				t.Fatalf("Name = %q", l.Name())
			}
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					th := rt.RegisterThread(node)
					for i := 0; i < 300; i++ {
						l.Acquire(th)
						counter++
						l.Release(th)
					}
				}(w % 2)
			}
			wg.Wait()
			if counter != 8*300 {
				t.Fatalf("counter = %d (mutual exclusion broken)", counter)
			}
		})
	}
}

func TestLockerWithSyncCond(t *testing.T) {
	rt := hbo.NewRuntime(1, 2)
	l := hbo.NewLock(hbo.HBOGTSD, rt)
	lk := hbo.Locker{L: l, T: rt.RegisterThread(0)}
	var mu sync.Locker = lk
	mu.Lock()
	mu.Unlock()
}

func TestNewLockTuned(t *testing.T) {
	rt := hbo.NewRuntime(2, 2)
	tun := hbo.DefaultTuning()
	tun.GetAngryLimit = 4
	l := hbo.NewLockTuned(hbo.HBOGTSD, rt, tun)
	th := rt.RegisterThread(0)
	l.Acquire(th)
	l.Release(th)
}

func TestExtendedAlgorithmsPublic(t *testing.T) {
	ext := hbo.ExtendedAlgorithmNames()
	if len(ext) != 7 {
		t.Fatalf("extensions = %v", ext)
	}
	if len(hbo.AllAlgorithmNames()) != 15 {
		t.Fatalf("AllAlgorithmNames = %v", hbo.AllAlgorithmNames())
	}
	if !hbo.Cohort.NUCAAware() || !hbo.CNA.NUCAAware() || !hbo.HMCST.NUCAAware() ||
		hbo.Ticket.NUCAAware() {
		t.Error("NUCA-awareness of extensions wrong")
	}
	for _, a := range ext {
		a := a
		t.Run(string(a), func(t *testing.T) {
			rt := hbo.NewRuntimeHierarchical(4, 2, 8)
			l := hbo.NewLock(a, rt)
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					th := rt.RegisterThread(node)
					for i := 0; i < 200; i++ {
						l.Acquire(th)
						counter++
						l.Release(th)
					}
				}(w % 4)
			}
			wg.Wait()
			if counter != 1600 {
				t.Fatalf("counter = %d", counter)
			}
		})
	}
}

func TestTryLockerPublic(t *testing.T) {
	rt := hbo.NewRuntime(2, 2)
	l := hbo.NewLock(hbo.HBOGTSD, rt)
	tl, ok := l.(hbo.TryLocker)
	if !ok {
		t.Fatal("HBO_GT_SD should offer TryAcquire")
	}
	th := rt.RegisterThread(0)
	if !tl.TryAcquire(th) {
		t.Fatal("try on free lock failed")
	}
	tl.Release(th)
	if _, ok := hbo.NewLock(hbo.CLH, rt).(hbo.TryLocker); ok {
		t.Fatal("CLH should not offer TryAcquire")
	}
}
