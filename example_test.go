package hbo_test

import (
	"fmt"
	"sync"

	hbo "repro"
)

// ExampleNewLock shows the basic acquire/release pattern: register each
// worker with its logical NUCA node and pass the Thread handle to the
// lock operations.
func ExampleNewLock() {
	rt := hbo.NewRuntime(2, 4) // 2 nodes, up to 4 workers
	lock := hbo.NewLock(hbo.HBOGTSD, rt)

	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			t := rt.RegisterThread(node)
			for i := 0; i < 1000; i++ {
				lock.Acquire(t)
				counter++
				lock.Release(t)
			}
		}(w % 2)
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 4000
}

// ExampleLocker adapts a lock to sync.Locker for APIs that expect the
// standard interface.
func ExampleLocker() {
	rt := hbo.NewRuntime(1, 1)
	lock := hbo.NewLock(hbo.HBO, rt)
	var mu sync.Locker = hbo.Locker{L: lock, T: rt.RegisterThread(0)}
	mu.Lock()
	fmt.Println("held")
	mu.Unlock()
	// Output: held
}

// ExampleNewRuntimeHierarchical builds a clustered topology for the
// hierarchical HBO variant.
func ExampleNewRuntimeHierarchical() {
	// Eight nodes grouped in clusters of two — e.g. a NUMA box built
	// from dual-CMP packages.
	rt := hbo.NewRuntimeHierarchical(8, 2, 16)
	lock := hbo.NewLock(hbo.HBOHier, rt)
	t := rt.RegisterThread(5)
	lock.Acquire(t)
	lock.Release(t)
	fmt.Println(lock.Name())
	// Output: HBO_HIER
}

// ExampleAlgorithm_NUCAAware distinguishes the node-affine algorithms.
func ExampleAlgorithm_NUCAAware() {
	fmt.Println(hbo.MCS.NUCAAware(), hbo.HBOGTSD.NUCAAware())
	// Output: false true
}
